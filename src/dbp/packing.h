// Packing policies for the MinUsageTime Dynamic Bin Packing extension
// (§5 of the paper): once a scheduler fixes start times, items (jobs with
// resource sizes) are placed into bins (servers with unit capacity) for
// the duration of their active intervals; the objective is the total time
// bins are non-empty.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/interval.h"
#include "core/job.h"

namespace fjs {

struct DbpItem {
  JobId job = kInvalidJob;
  double size = 0.0;   ///< resource demand in (0, capacity]
  Interval active;     ///< placement interval fixed by the scheduler
};

/// Online packing policy. `place` returns the index of the bin to use;
/// returning `loads.size()` opens a new bin. The simulator validates that
/// the chosen bin has residual capacity.
class Packer {
 public:
  virtual ~Packer() = default;
  virtual std::string name() const = 0;

  /// `loads[i]` is bin i's current load at the item's start time.
  virtual std::size_t place(const DbpItem& item,
                            const std::vector<double>& loads,
                            double capacity) = 0;

  virtual void reset() {}
};

/// First Fit: lowest-indexed bin with enough residual capacity.
/// The paper's §5 cites First Fit as near-optimal (O(μ)) for
/// non-clairvoyant MinUsageTime DBP.
class FirstFitPacker final : public Packer {
 public:
  std::string name() const override { return "first-fit"; }
  std::size_t place(const DbpItem& item, const std::vector<double>& loads,
                    double capacity) override;
};

/// Best Fit: feasible bin with the least residual capacity after placing.
class BestFitPacker final : public Packer {
 public:
  std::string name() const override { return "best-fit"; }
  std::size_t place(const DbpItem& item, const std::vector<double>& loads,
                    double capacity) override;
};

/// Worst Fit: feasible bin with the MOST residual capacity (spreads load;
/// included to show why tight packing matters for usage time).
class WorstFitPacker final : public Packer {
 public:
  std::string name() const override { return "worst-fit"; }
  std::size_t place(const DbpItem& item, const std::vector<double>& loads,
                    double capacity) override;
};

/// Next Fit: keep one "open" bin; open a new one when the item misses.
class NextFitPacker final : public Packer {
 public:
  std::string name() const override { return "next-fit"; }
  std::size_t place(const DbpItem& item, const std::vector<double>& loads,
                    double capacity) override;
  void reset() override { current_ = kNone; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t current_ = kNone;
};

/// Classify-by-duration First Fit (§5: achieves O(log μ) for clairvoyant
/// MinUsageTime DBP): items are classified by active-interval length into
/// geometric classes and each class First-Fits into its own bin pool.
class CdFirstFitPacker final : public Packer {
 public:
  /// `ratio` is the per-class max/min duration ratio (> 1).
  explicit CdFirstFitPacker(double ratio = 2.0);

  std::string name() const override;
  std::size_t place(const DbpItem& item, const std::vector<double>& loads,
                    double capacity) override;
  void reset() override { pools_.clear(); }

 private:
  long class_of(Time duration) const;

  double ratio_;
  std::map<long, std::vector<std::size_t>> pools_;  ///< class -> bin indices
};

}  // namespace fjs
