// The named standard workload suite used by the comparison and sweep
// benches (E5–E7), so every experiment draws from the same families.
#pragma once

#include <string>
#include <vector>

#include "workload/generator.h"

namespace fjs {

struct NamedWorkload {
  std::string name;
  WorkloadConfig config;
};

/// The standard families:
///   uniform-lo-lax, uniform-hi-lax, bimodal, heavy-tail, bursty,
///   rigid (zero laxity), proportional-lax, sparse.
const std::vector<NamedWorkload>& standard_suite();

/// Small integral variants of the suite (n <= `jobs`), suitable for the
/// exact offline solver; used by theorem-bound property tests.
std::vector<NamedWorkload> integral_suite(std::size_t jobs);

}  // namespace fjs
