// Seeded stochastic workload generation for the empirical comparison
// benches (E7) and randomized property tests.
#pragma once

#include <cstdint>
#include <string>

#include "core/instance.h"
#include "support/rng.h"

namespace fjs {

enum class ArrivalProcess {
  kPoisson,   ///< exponential inter-arrival times with `arrival_rate`
  kPeriodic,  ///< fixed spacing 1/arrival_rate
  kBursty,    ///< geometric bursts of simultaneous arrivals, spaced gaps
};

enum class LengthDistribution {
  kFixed,            ///< always length_min
  kUniform,          ///< uniform [length_min, length_max]
  kBimodal,          ///< length_min w.p. bimodal_short_fraction else length_max
  kLognormal,        ///< exp(N(mu, sigma)), clamped to [length_min, length_max]
  kParetoTruncated,  ///< heavy tail on [length_min, length_max]
};

enum class LaxityModel {
  kZero,            ///< rigid jobs (the prior literature's model)
  kFixed,           ///< constant laxity_min
  kUniform,         ///< uniform [laxity_min, laxity_max]
  kProportional,    ///< laxity = laxity_factor × length
};

struct WorkloadConfig {
  std::size_t job_count = 100;

  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  double arrival_rate = 1.0;        ///< jobs per time unit
  double burst_size_mean = 4.0;     ///< kBursty: mean jobs per burst
  double burst_gap = 4.0;           ///< kBursty: mean gap between bursts

  LengthDistribution lengths = LengthDistribution::kUniform;
  double length_min = 1.0;
  double length_max = 4.0;
  double bimodal_short_fraction = 0.8;
  double lognormal_mu = 0.5;
  double lognormal_sigma = 0.8;
  double pareto_shape = 1.5;

  LaxityModel laxity = LaxityModel::kUniform;
  double laxity_min = 0.0;
  double laxity_max = 4.0;
  double laxity_factor = 2.0;

  /// Snap every time to whole units (ticks multiple of kTicksPerUnit) so
  /// the exact offline solver applies. Lengths snap up to >= 1 unit.
  bool integral = false;

  std::string to_string() const;
};

/// Generates a reproducible instance; identical (config, seed) pairs yield
/// identical instances on every platform.
Instance generate_workload(const WorkloadConfig& config, std::uint64_t seed);

}  // namespace fjs
