// Instance transformations: reusable, validated manipulations for
// ablations (E10-style laxity scaling), robustness studies and test
// construction.
#pragma once

#include <cstdint>

#include "core/instance.h"

namespace fjs {

/// Multiplies every job's laxity by `factor` >= 0 (deadline = arrival +
/// factor·laxity, rounded to ticks).
Instance scale_laxity(const Instance& instance, double factor);

/// Multiplies every processing length by `factor` > 0.
Instance scale_lengths(const Instance& instance, double factor);

/// Shifts all times by `delta` (overflow-checked).
Instance shift_times(const Instance& instance, Time delta);

/// Concatenates two instances (ids renumbered).
Instance merge_instances(const Instance& a, const Instance& b);

/// Keeps a reproducible random subset of `count` jobs (all jobs if count
/// >= size).
Instance subsample(const Instance& instance, std::size_t count,
                   std::uint64_t seed);

/// Rounds every arrival down, every length up and every laxity down to
/// multiples of `quantum`, preserving feasibility (deadline >= arrival)
/// and positive lengths. The result satisfies is_multiple_of(quantum),
/// making the exact solver applicable.
Instance snap_to_grid(const Instance& instance, Time quantum);

/// Rigid variant: every deadline set to the arrival (laxity 0).
Instance make_rigid(const Instance& instance);

}  // namespace fjs
