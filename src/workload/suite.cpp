#include "workload/suite.h"

namespace fjs {

const std::vector<NamedWorkload>& standard_suite() {
  static const std::vector<NamedWorkload> suite = [] {
    std::vector<NamedWorkload> s;

    WorkloadConfig uniform_lo;
    uniform_lo.job_count = 300;
    uniform_lo.arrival_rate = 2.0;
    uniform_lo.lengths = LengthDistribution::kUniform;
    uniform_lo.length_min = 1.0;
    uniform_lo.length_max = 4.0;
    uniform_lo.laxity = LaxityModel::kUniform;
    uniform_lo.laxity_min = 0.0;
    uniform_lo.laxity_max = 1.0;
    s.push_back({"uniform-lo-lax", uniform_lo});

    WorkloadConfig uniform_hi = uniform_lo;
    uniform_hi.laxity_max = 8.0;
    s.push_back({"uniform-hi-lax", uniform_hi});

    WorkloadConfig bimodal = uniform_lo;
    bimodal.lengths = LengthDistribution::kBimodal;
    bimodal.length_min = 1.0;
    bimodal.length_max = 10.0;
    bimodal.bimodal_short_fraction = 0.85;
    bimodal.laxity_max = 6.0;
    s.push_back({"bimodal", bimodal});

    WorkloadConfig heavy = uniform_lo;
    heavy.lengths = LengthDistribution::kParetoTruncated;
    heavy.length_min = 1.0;
    heavy.length_max = 30.0;
    heavy.pareto_shape = 1.3;
    heavy.laxity = LaxityModel::kProportional;
    heavy.laxity_factor = 1.5;
    s.push_back({"heavy-tail", heavy});

    WorkloadConfig bursty = uniform_lo;
    bursty.arrivals = ArrivalProcess::kBursty;
    bursty.burst_size_mean = 6.0;
    bursty.burst_gap = 5.0;
    bursty.laxity_max = 4.0;
    s.push_back({"bursty", bursty});

    WorkloadConfig rigid = uniform_lo;
    rigid.laxity = LaxityModel::kZero;
    s.push_back({"rigid", rigid});

    WorkloadConfig proportional = uniform_lo;
    proportional.laxity = LaxityModel::kProportional;
    proportional.laxity_factor = 2.0;
    s.push_back({"proportional-lax", proportional});

    WorkloadConfig sparse = uniform_lo;
    sparse.arrival_rate = 0.25;
    sparse.laxity_max = 4.0;
    s.push_back({"sparse", sparse});

    return s;
  }();
  return suite;
}

std::vector<NamedWorkload> integral_suite(std::size_t jobs) {
  std::vector<NamedWorkload> out = standard_suite();
  for (auto& named : out) {
    named.config.job_count = jobs;
    named.config.integral = true;
    // Keep windows small so the exact solver's grid stays tractable.
    named.config.laxity_max = std::min(named.config.laxity_max, 5.0);
    named.config.length_max = std::min(named.config.length_max, 6.0);
  }
  return out;
}

}  // namespace fjs
