// Synthetic cloud workload: the paper's §1 motivation (pay-as-you-go
// billing, energy proportionality) without access to proprietary traces.
//
// Substitution note (DESIGN.md): real cluster traces are not available
// offline, so we synthesize the features that matter for span scheduling —
// a diurnal arrival-rate curve, heterogeneous job classes with lognormal
// service times, and class-dependent start laxities (batch jobs tolerate
// delay, interactive ones barely). Sizes (resource demands) feed the §5
// dynamic-bin-packing extension.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.h"

namespace fjs {

struct CloudJobClass {
  std::string name;
  double weight;            ///< relative arrival share
  double length_median;     ///< hours (lognormal median)
  double length_sigma;      ///< lognormal shape
  double max_length;        ///< clamp, hours
  double laxity_factor;     ///< laxity = factor × length
  double size_min;          ///< resource demand, fraction of one server
  double size_max;
};

struct CloudTraceConfig {
  std::size_t job_count = 500;
  double hours = 48.0;            ///< trace horizon
  double base_rate = 12.0;        ///< mean arrivals per hour
  double diurnal_amplitude = 0.6; ///< 0 = flat, 1 = rate swings to zero
  double peak_hour = 14.0;        ///< local time of the daily peak
  std::vector<CloudJobClass> classes;  ///< empty = default_classes()
};

struct CloudTrace {
  Instance instance;
  /// Resource demand per job, aligned with instance ids, in (0, 1].
  std::vector<double> sizes;
  /// Class index per job, aligned with instance ids.
  std::vector<std::size_t> class_of;
  std::vector<CloudJobClass> classes;
};

/// The built-in class mix: interactive / web-batch / etl / ml-training.
std::vector<CloudJobClass> default_cloud_classes();

/// Generates a reproducible synthetic trace.
CloudTrace generate_cloud_trace(const CloudTraceConfig& config,
                                std::uint64_t seed);

}  // namespace fjs
