#include "workload/transforms.h"

#include "core/job_table.h"
#include "support/assert.h"
#include "support/rng.h"

namespace fjs {

Instance scale_laxity(const Instance& instance, double factor) {
  FJS_REQUIRE(factor >= 0.0, "scale_laxity: factor must be >= 0");
  const InstanceView view = instance.view();
  JobTable table;
  table.reserve(view.size());
  for (JobId id = 0; id < view.size(); ++id) {
    const Job j = view.job(id);
    table.push_back(j.arrival, j.arrival + j.laxity().scaled(factor),
                    j.length);
  }
  return Instance(std::move(table));
}

Instance scale_lengths(const Instance& instance, double factor) {
  FJS_REQUIRE(factor > 0.0, "scale_lengths: factor must be > 0");
  const InstanceView view = instance.view();
  JobTable table;
  table.reserve(view.size());
  for (JobId id = 0; id < view.size(); ++id) {
    const Time length = view.length(id).scaled(factor);
    FJS_REQUIRE(length > Time::zero(),
                "scale_lengths: length rounded to zero");
    table.push_back(view.arrival(id), view.deadline(id), length);
  }
  return Instance(std::move(table));
}

Instance shift_times(const Instance& instance, Time delta) {
  const InstanceView view = instance.view();
  JobTable table;
  table.reserve(view.size());
  for (JobId id = 0; id < view.size(); ++id) {
    table.push_back(view.arrival(id).checked_add(delta),
                    view.deadline(id).checked_add(delta), view.length(id));
  }
  return Instance(std::move(table));
}

Instance merge_instances(const Instance& a, const Instance& b) {
  JobTable table;
  table.reserve(a.size() + b.size());
  const InstanceView va = a.view();
  for (JobId id = 0; id < va.size(); ++id) {
    table.push_back(va.job(id));
  }
  const InstanceView vb = b.view();
  for (JobId id = 0; id < vb.size(); ++id) {
    table.push_back(vb.job(id));
  }
  return Instance(std::move(table));
}

Instance subsample(const Instance& instance, std::size_t count,
                   std::uint64_t seed) {
  if (count >= instance.size()) {
    return instance;
  }
  Rng rng(seed);
  std::vector<JobId> ids(instance.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<JobId>(i);
  }
  rng.shuffle(ids);
  ids.resize(count);
  JobTable table;
  table.reserve(count);
  for (const JobId id : ids) {
    table.push_back(instance.job(id));
  }
  return Instance(std::move(table));
}

Instance snap_to_grid(const Instance& instance, Time quantum) {
  FJS_REQUIRE(quantum > Time::zero(), "snap_to_grid: quantum must be > 0");
  const std::int64_t q = quantum.ticks();
  auto floor_to = [q](Time t) {
    std::int64_t v = t.ticks();
    std::int64_t r = v % q;
    if (r < 0) {
      r += q;
    }
    return Time(v - r);
  };
  auto ceil_to = [&](Time t) {
    const Time down = floor_to(t);
    return down == t ? t : down + Time(q);
  };
  const InstanceView view = instance.view();
  JobTable table;
  table.reserve(view.size());
  for (JobId id = 0; id < view.size(); ++id) {
    const Job j = view.job(id);
    const Time arrival = floor_to(j.arrival);
    const Time laxity = floor_to(j.laxity());
    Time length = ceil_to(j.length);
    if (length == Time::zero()) {
      length = Time(q);
    }
    table.push_back(arrival, arrival + laxity, length);
  }
  return Instance(std::move(table));
}

Instance make_rigid(const Instance& instance) {
  return scale_laxity(instance, 0.0);
}

}  // namespace fjs
