#include "workload/transforms.h"

#include <vector>

#include "support/assert.h"
#include "support/rng.h"

namespace fjs {

Instance scale_laxity(const Instance& instance, double factor) {
  FJS_REQUIRE(factor >= 0.0, "scale_laxity: factor must be >= 0");
  std::vector<Job> jobs;
  jobs.reserve(instance.size());
  for (Job j : instance.jobs()) {
    j.deadline = j.arrival + j.laxity().scaled(factor);
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

Instance scale_lengths(const Instance& instance, double factor) {
  FJS_REQUIRE(factor > 0.0, "scale_lengths: factor must be > 0");
  std::vector<Job> jobs;
  jobs.reserve(instance.size());
  for (Job j : instance.jobs()) {
    j.length = j.length.scaled(factor);
    FJS_REQUIRE(j.length > Time::zero(),
                "scale_lengths: length rounded to zero");
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

Instance shift_times(const Instance& instance, Time delta) {
  std::vector<Job> jobs;
  jobs.reserve(instance.size());
  for (Job j : instance.jobs()) {
    j.arrival = j.arrival.checked_add(delta);
    j.deadline = j.deadline.checked_add(delta);
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

Instance merge_instances(const Instance& a, const Instance& b) {
  std::vector<Job> jobs;
  jobs.reserve(a.size() + b.size());
  for (const Job& j : a.jobs()) {
    jobs.push_back(j);
  }
  for (const Job& j : b.jobs()) {
    jobs.push_back(j);
  }
  return Instance(std::move(jobs));
}

Instance subsample(const Instance& instance, std::size_t count,
                   std::uint64_t seed) {
  if (count >= instance.size()) {
    return instance;
  }
  Rng rng(seed);
  std::vector<JobId> ids(instance.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<JobId>(i);
  }
  rng.shuffle(ids);
  ids.resize(count);
  std::vector<Job> jobs;
  jobs.reserve(count);
  for (const JobId id : ids) {
    jobs.push_back(instance.job(id));
  }
  return Instance(std::move(jobs));
}

Instance snap_to_grid(const Instance& instance, Time quantum) {
  FJS_REQUIRE(quantum > Time::zero(), "snap_to_grid: quantum must be > 0");
  const std::int64_t q = quantum.ticks();
  auto floor_to = [q](Time t) {
    std::int64_t v = t.ticks();
    std::int64_t r = v % q;
    if (r < 0) {
      r += q;
    }
    return Time(v - r);
  };
  auto ceil_to = [&](Time t) {
    const Time down = floor_to(t);
    return down == t ? t : down + Time(q);
  };
  std::vector<Job> jobs;
  jobs.reserve(instance.size());
  for (const Job& j : instance.jobs()) {
    Job snapped = j;
    snapped.arrival = floor_to(j.arrival);
    const Time laxity = floor_to(j.laxity());
    snapped.deadline = snapped.arrival + laxity;
    snapped.length = ceil_to(j.length);
    if (snapped.length == Time::zero()) {
      snapped.length = Time(q);
    }
    jobs.push_back(snapped);
  }
  return Instance(std::move(jobs));
}

Instance make_rigid(const Instance& instance) {
  return scale_laxity(instance, 0.0);
}

}  // namespace fjs
