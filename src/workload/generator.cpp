#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.h"

namespace fjs {
namespace {

double draw_length(const WorkloadConfig& cfg, Rng& rng) {
  switch (cfg.lengths) {
    case LengthDistribution::kFixed:
      return cfg.length_min;
    case LengthDistribution::kUniform:
      return rng.uniform_real(cfg.length_min, cfg.length_max);
    case LengthDistribution::kBimodal:
      return rng.bernoulli(cfg.bimodal_short_fraction) ? cfg.length_min
                                                       : cfg.length_max;
    case LengthDistribution::kLognormal:
      return std::clamp(rng.lognormal(cfg.lognormal_mu, cfg.lognormal_sigma),
                        cfg.length_min, cfg.length_max);
    case LengthDistribution::kParetoTruncated:
      return rng.pareto_truncated(cfg.length_min, cfg.pareto_shape,
                                  cfg.length_max);
  }
  FJS_UNREACHABLE("unknown length distribution");
}

double draw_laxity(const WorkloadConfig& cfg, double length, Rng& rng) {
  switch (cfg.laxity) {
    case LaxityModel::kZero:
      return 0.0;
    case LaxityModel::kFixed:
      return cfg.laxity_min;
    case LaxityModel::kUniform:
      return rng.uniform_real(cfg.laxity_min,
                              std::nextafter(cfg.laxity_max, 1e300));
    case LaxityModel::kProportional:
      return cfg.laxity_factor * length;
  }
  FJS_UNREACHABLE("unknown laxity model");
}

}  // namespace

std::string WorkloadConfig::to_string() const {
  std::ostringstream os;
  os << "n=" << job_count << " arrivals=";
  switch (arrivals) {
    case ArrivalProcess::kPoisson:
      os << "poisson(" << arrival_rate << ')';
      break;
    case ArrivalProcess::kPeriodic:
      os << "periodic(" << arrival_rate << ')';
      break;
    case ArrivalProcess::kBursty:
      os << "bursty(mean=" << burst_size_mean << ",gap=" << burst_gap << ')';
      break;
  }
  os << " p=[" << length_min << ',' << length_max << ']';
  return os.str();
}

Instance generate_workload(const WorkloadConfig& cfg, std::uint64_t seed) {
  FJS_REQUIRE(cfg.job_count > 0, "workload: job_count must be positive");
  FJS_REQUIRE(cfg.length_min > 0.0 && cfg.length_max >= cfg.length_min,
              "workload: bad length range");
  FJS_REQUIRE(cfg.laxity_min >= 0.0 && cfg.laxity_max >= cfg.laxity_min,
              "workload: bad laxity range");
  FJS_REQUIRE(cfg.arrival_rate > 0.0, "workload: arrival_rate must be > 0");

  Rng rng(seed);
  InstanceBuilder builder;
  double now = 0.0;
  std::size_t produced = 0;
  while (produced < cfg.job_count) {
    std::size_t batch = 1;
    switch (cfg.arrivals) {
      case ArrivalProcess::kPoisson:
        now += rng.exponential(cfg.arrival_rate);
        break;
      case ArrivalProcess::kPeriodic:
        now += 1.0 / cfg.arrival_rate;
        break;
      case ArrivalProcess::kBursty: {
        now += rng.exponential(1.0 / cfg.burst_gap);
        // Geometric burst size with the requested mean (>= 1).
        const double p_stop = 1.0 / std::max(1.0, cfg.burst_size_mean);
        batch = 1;
        while (!rng.bernoulli(p_stop) &&
               produced + batch < cfg.job_count) {
          ++batch;
        }
        break;
      }
    }
    for (std::size_t b = 0; b < batch && produced < cfg.job_count; ++b) {
      double length = draw_length(cfg, rng);
      double laxity = draw_laxity(cfg, length, rng);
      double arrival = now;
      if (cfg.integral) {
        arrival = std::floor(arrival);
        length = std::max(1.0, std::round(length));
        laxity = std::round(laxity);
      }
      builder.add_lax(arrival, laxity, length);
      ++produced;
    }
  }
  return builder.build();
}

}  // namespace fjs
