#include "workload/cloud_trace.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"
#include "support/rng.h"

namespace fjs {

std::vector<CloudJobClass> default_cloud_classes() {
  return {
      CloudJobClass{.name = "interactive", .weight = 0.45,
                    .length_median = 0.2, .length_sigma = 0.6,
                    .max_length = 2.0, .laxity_factor = 0.1,
                    .size_min = 0.05, .size_max = 0.25},
      CloudJobClass{.name = "web-batch", .weight = 0.30,
                    .length_median = 0.8, .length_sigma = 0.8,
                    .max_length = 6.0, .laxity_factor = 1.0,
                    .size_min = 0.10, .size_max = 0.40},
      CloudJobClass{.name = "etl", .weight = 0.18,
                    .length_median = 2.0, .length_sigma = 0.7,
                    .max_length = 12.0, .laxity_factor = 3.0,
                    .size_min = 0.20, .size_max = 0.60},
      CloudJobClass{.name = "ml-training", .weight = 0.07,
                    .length_median = 6.0, .length_sigma = 0.5,
                    .max_length = 24.0, .laxity_factor = 2.0,
                    .size_min = 0.40, .size_max = 1.00},
  };
}

CloudTrace generate_cloud_trace(const CloudTraceConfig& config,
                                std::uint64_t seed) {
  FJS_REQUIRE(config.job_count > 0, "cloud trace: job_count must be > 0");
  FJS_REQUIRE(config.hours > 0.0, "cloud trace: horizon must be > 0");
  FJS_REQUIRE(config.base_rate > 0.0, "cloud trace: base_rate must be > 0");
  FJS_REQUIRE(config.diurnal_amplitude >= 0.0 &&
                  config.diurnal_amplitude <= 1.0,
              "cloud trace: amplitude in [0,1]");

  CloudTrace trace;
  trace.classes =
      config.classes.empty() ? default_cloud_classes() : config.classes;

  std::vector<double> weights;
  for (const auto& c : trace.classes) {
    FJS_REQUIRE(c.weight > 0.0 && c.size_min > 0.0 &&
                    c.size_max <= 1.0 && c.size_min <= c.size_max,
                "cloud trace: bad class " + c.name);
    weights.push_back(c.weight);
  }

  Rng rng(seed);
  InstanceBuilder builder;

  // Thinning: sample candidate arrivals at the peak rate, accept with the
  // diurnal modulation  rate(t) = base · (1 + A·cos(2π(t − peak)/24)) / (1+A).
  const double peak_rate = config.base_rate * (1.0 + config.diurnal_amplitude);
  double now = 0.0;
  std::size_t produced = 0;
  while (produced < config.job_count) {
    now += rng.exponential(peak_rate);
    if (now > config.hours) {
      now = std::fmod(now, config.hours);  // wrap — keep the count exact
    }
    const double phase = 2.0 * 3.14159265358979323846 *
                         (now - config.peak_hour) / 24.0;
    const double rate = config.base_rate *
                        (1.0 + config.diurnal_amplitude * std::cos(phase)) /
                        (1.0 + config.diurnal_amplitude);
    if (!rng.bernoulli(std::clamp(rate / peak_rate, 0.0, 1.0))) {
      continue;
    }
    const std::size_t cls = rng.weighted_index(weights);
    const CloudJobClass& c = trace.classes[cls];
    const double length =
        std::clamp(c.length_median *
                       std::exp(rng.normal(0.0, c.length_sigma)),
                   0.05, c.max_length);
    const double laxity = c.laxity_factor * length;
    builder.add_lax(now, laxity, length);
    trace.sizes.push_back(rng.uniform_real(c.size_min,
                                           std::nextafter(c.size_max, 2.0)));
    trace.class_of.push_back(cls);
    ++produced;
  }
  trace.instance = builder.build();
  return trace;
}

}  // namespace fjs
