// Certified lower bounds on the optimal span.
//
// Competitive ratios on large instances are reported as a bracket
//   span_on / heuristic  <=  true ratio  <=  span_on / lower_bound;
// these functions provide the denominator of the upper estimate. Each bound
// is valid for EVERY schedule, online or offline.
//
// Every bound takes an InstanceView — the miner's batch evaluator calls
// them on mutation scratch tables with no owning Instance in sight. The
// Instance overloads are thin forwarders.
#pragma once

#include "core/instance.h"
#include "core/job_table.h"
#include "core/time.h"

namespace fjs {

/// Measure of the union of mandatory regions [d(J), a(J)+p(J)): when a
/// job's laxity is smaller than its length, every placement covers that
/// region, so every schedule's span covers their union.
Time mandatory_lower_bound(InstanceView view);
inline Time mandatory_lower_bound(const Instance& instance) {
  return mandatory_lower_bound(instance.view());
}

/// Disjointness-chain bound: if a(J') >= d(J) + p(J), the active intervals
/// of J and J' cannot overlap under any schedule (J is forced to finish
/// before J' exists). The maximum-weight chain of pairwise-forced-disjoint
/// jobs, weighted by processing length, lower-bounds the span. O(n log n).
Time chain_lower_bound(InstanceView view);
inline Time chain_lower_bound(const Instance& instance) {
  return chain_lower_bound(instance.view());
}

/// The longest single job is always fully inside the span.
Time max_length_lower_bound(InstanceView view);
inline Time max_length_lower_bound(const Instance& instance) {
  return max_length_lower_bound(instance.view());
}

/// max of the three bounds above. Zero for the empty instance.
Time best_lower_bound(InstanceView view);
inline Time best_lower_bound(const Instance& instance) {
  return best_lower_bound(instance.view());
}

}  // namespace fjs
