// Exact offline optimum via pruned branch-and-bound over critical start
// times.
//
// The paper cites Khandekar et al. [11] for a polynomial offline algorithm;
// for reproduction purposes we need a solver whose correctness is easy to
// audit, because it anchors every measured competitive ratio.
//
// Critical-start argument (why a finite candidate set suffices): fix an
// optimal schedule and group jobs whose interval endpoints coincide or abut
// into rigid alignment components. Any component with no job pinned at a
// window endpoint can shift as a block without increasing the span until
// something pins (the span is piecewise linear in the shift and
// non-increasing in one direction), so an optimal schedule exists in which
// every component contains an anchor job starting at its own arrival or
// deadline, and every other member chains off the anchor by endpoint
// alignment. Ordering each component anchor-first, every job starts at one
// of: its arrival, its deadline, or a point aligning one of its interval
// endpoints with a component endpoint of the union of previously placed
// intervals. The search therefore branches over (remaining job, critical
// start) pairs — the job-choice branching is what realizes the anchor-first
// orders, and a transposition cache keyed on (remaining-job set, placed
// union) collapses the resulting permutation redundancy. The argument
// never uses integrality, so unlike the grid reference solver below the
// branch-and-bound accepts arbitrary tick-valued instances.
//
// Pruning (speed only, never correctness):
//  * admissible bound  measure(placed ∪ mandatory(remaining)) evaluated
//    incrementally with IntervalSet::sorted_union_measure (no allocation);
//  * dominance: a remaining job with a zero-marginal start (active interval
//    contained in the placed union) is committed there without branching;
//  * twin symmetry: among identical remaining jobs only the lowest id
//    branches;
//  * incumbent seeding: the offline heuristic's schedule primes the upper
//    bound so the admissible bound bites from the first node.
#pragma once

#include <cstddef>

#include "core/instance.h"
#include "core/schedule.h"

namespace fjs {

class ThreadPool;

struct ExactOptions {
  /// Grid step for the *reference* solver only (exact_optimal_reference);
  /// the branch-and-bound ignores it. The reference requires
  /// Instance::is_multiple_of(quantum).
  Time quantum = Time(Time::kTicksPerUnit);
  /// Search-node budget. The branch-and-bound returns a structured
  /// ExactStatus::kBudgetExceeded result (best-so-far incumbent) when
  /// exhausted; the reference solver throws AssertionError. Kept as a node
  /// count rather than wall-clock so results stay machine-independent.
  std::size_t max_nodes = 20'000'000;
  /// Transposition-cache entry cap. When full the cache stops inserting
  /// (lookups keep working); 0 disables caching entirely.
  std::size_t max_cache_entries = 2'000'000;
  /// Prime the incumbent with the offline heuristic's schedule. Costs one
  /// heuristic run up front; repays it by making the admissible bound cut
  /// from the first node. Disable for micro-instances measured in isolation.
  bool seed_with_heuristic = true;
  /// Optional caller-supplied incumbent (non-owning; must be a feasible
  /// schedule for the instance). When the caller already holds *some*
  /// valid schedule — the miner holds the online run it just simulated —
  /// passing it here primes the upper bound for free. Combines with the
  /// other seeds: the best available incumbent wins. Never changes the
  /// returned span (the search still proves optimality); only how much of
  /// the tree the bound can cut.
  const Schedule* seed_schedule = nullptr;
  /// Decision floor (zero = disabled). When the caller only needs to know
  /// whether OPT < floor — the adversarial miner asks "can this candidate's
  /// ratio beat the incumbent", i.e. "is OPT < span/threshold" — the search
  /// runs with the root bound clamped to the floor. Branches whose
  /// admissible bound reaches the floor are cut without being certified,
  /// which prunes far more of the tree than a full optimality proof. The
  /// result is then one of:
  ///  * kOptimal with span < floor: the true optimum (the fail-soft search
  ///    is unaffected below the bound);
  ///  * kFloorProven: OPT >= floor is proven; span/schedule hold the best
  ///    known feasible incumbent (an upper bound), NOT the optimum;
  ///  * kBudgetExceeded: as without the floor.
  /// Floor-clamped runs use the serial search even when `pool` is set (the
  /// parallel reduction cannot distinguish "seed optimal" from "floor
  /// proven").
  Time decision_floor = Time::zero();
  /// Span-only mode: the caller wants the optimal span (or a floor proof),
  /// not a witness schedule. Skips incumbent-schedule construction and the
  /// reconstruction walk entirely; `result.schedule` comes back empty
  /// (size 0). Hot loops that call the solver per candidate — the miner's
  /// certification stage — use this together with `seed_span`.
  bool span_only = false;
  /// Caller-known feasible span (zero = none): seeds the incumbent without
  /// materializing a Schedule. The companion to `span_only` — the miner
  /// passes the online span it just simulated — and only honored there
  /// (span_only mode requires this or seed_with_heuristic; when both are
  /// given the smaller span wins). Ignored when span_only is false, where
  /// every result must carry a witness schedule matching the incumbent.
  Time seed_span = Time::zero();
  /// When every arrival/deadline/length is a multiple of a common grid g
  /// (and windows hold few grid points), an optimal schedule exists on the
  /// g-grid: every critical start is a ±sum-of-lengths away from some
  /// arrival or deadline, all multiples of g. The solver then branches one
  /// fixed most-constrained job per depth over its grid starts (branching
  /// factor = window/g + 1) instead of over all (job, critical-start)
  /// pairs, keeping the same cache/bound/budget machinery. Disable to
  /// force the general critical-start branching everywhere (differential
  /// tests do; it is also what runs automatically when windows are wide
  /// relative to the instance grid).
  bool use_integral_fast_path = true;
  /// Optional pool for splitting the root branches across workers. nullptr
  /// or a 1-thread pool keeps the fully deterministic serial search. With
  /// a real pool the optimal SPAN is still deterministic (tasks share an
  /// atomic incumbent, reduced in branch order), but which of several
  /// equally-optimal schedules is returned may vary run to run.
  ThreadPool* pool = nullptr;
};

enum class ExactStatus {
  kOptimal,         ///< span/schedule are provably optimal
  kBudgetExceeded,  ///< node budget hit; span/schedule are best-so-far
  kFloorProven,     ///< OPT >= decision_floor proven; span is an upper bound
};

struct ExactResult {
  /// The optimum iff status == kOptimal, otherwise the best incumbent found
  /// before the budget ran out (an upper bound).
  Time span;
  /// Witness schedule achieving `span`; empty (size 0) under
  /// ExactOptions::span_only.
  Schedule schedule;
  std::size_t nodes_explored = 0;
  ExactStatus status = ExactStatus::kOptimal;
  /// Transposition-cache statistics (exact-entry hits that short-circuited
  /// a subtree, and entries stored).
  std::size_t cache_hits = 0;
  std::size_t cache_entries = 0;

  bool optimal() const { return status == ExactStatus::kOptimal; }
};

/// Computes a provably optimal schedule (any tick-valued instance). Never
/// throws on budget exhaustion — check `result.status`.
ExactResult exact_optimal(const Instance& instance, ExactOptions options = {});

/// Owner-less span/decision entry over a non-owning view — the miner's
/// certification hot path, running directly on its mutation scratch table
/// with no Instance materialization. Requires `options.span_only` with a
/// positive `seed_span`, and forbids heuristic/schedule seeding (both need
/// an owning Instance). Same search, same determinism, empty schedule out.
ExactResult exact_optimal(InstanceView view, ExactOptions options);

/// Convenience: the optimal span only. Throws AssertionError if the node
/// budget is exhausted (callers that want the structured best-so-far result
/// use exact_optimal).
Time exact_optimal_span(const Instance& instance, ExactOptions options = {});

/// Legacy grid DFS, kept verbatim as the differential-testing oracle for
/// the branch-and-bound (and as the "before" body in the E9 solver
/// benchmarks). Requires the instance on the `options.quantum` grid and
/// throws AssertionError when the node budget is exhausted.
ExactResult exact_optimal_reference(const Instance& instance,
                                    ExactOptions options = {});

/// Convenience: the reference solver's optimal span only.
Time exact_optimal_span_reference(const Instance& instance,
                                  ExactOptions options = {});

}  // namespace fjs
