// Exact offline optimum for small integral instances.
//
// The paper cites Khandekar et al. [11] for a polynomial offline algorithm;
// for reproduction purposes we need a solver whose correctness is easy to
// audit, because it anchors every measured competitive ratio. We therefore
// use exhaustive branch-and-bound over a time grid:
//
//   Precondition: every arrival/deadline/length is a multiple of `quantum`.
//   Fact: such an instance has an optimal schedule on the grid. Sketch:
//   fix an optimal schedule; group jobs whose start is pinned to a window
//   endpoint or aligned (abutting) to another job's interval into rigid
//   alignment components; any unpinned component can shift as a block
//   without increasing the span until something pins, so an optimal
//   schedule exists where every start is a window endpoint plus a signed
//   sum of processing lengths — all grid points.
//
// The search places jobs in most-constrained-first order and prunes with
// the admissible bound  measure(placed-union ∪ mandatory(remaining)).
#pragma once

#include <cstddef>

#include "core/instance.h"
#include "core/schedule.h"

namespace fjs {

struct ExactOptions {
  /// Grid step; the instance must satisfy Instance::is_multiple_of.
  Time quantum = Time(Time::kTicksPerUnit);
  /// Search-node budget; exceeded => AssertionError (instance too big for
  /// the exact solver — use the heuristic + lower bounds instead).
  std::size_t max_nodes = 20'000'000;
};

struct ExactResult {
  Time span;
  Schedule schedule;
  std::size_t nodes_explored = 0;
};

/// Computes a provably optimal schedule. Throws AssertionError if the
/// instance is off-grid or the node budget is exhausted.
ExactResult exact_optimal(const Instance& instance, ExactOptions options = {});

/// Convenience: the optimal span only.
Time exact_optimal_span(const Instance& instance, ExactOptions options = {});

}  // namespace fjs
