// Branch-and-bound exact solver. See exact.h for the critical-start
// completeness argument; the short version of the design:
//
//  * Nodes are (remaining-job set, union of placed intervals). Branching is
//    over (job, critical start) pairs — job choice included, so the
//    anchor-first placement orders the completeness proof needs are
//    reachable.
//  * A transposition cache keyed on the node state collapses the
//    permutation redundancy job-choice branching creates: the minimal
//    completion span is a function of the state alone, not of the path.
//    Entries are fail-soft: exact values short-circuit whole subtrees,
//    lower bounds prune re-visits under a tighter incumbent.
//  * The admissible bound merges the placed components with the remaining
//    jobs' mandatory regions through IntervalSet::sorted_union_measure on
//    depth-indexed scratch buffers — no IntervalSet materialization per
//    node.
//  * Budget exhaustion is a structured result (best-so-far incumbent), not
//    an assertion: miners and sweeps decide how to handle it.
#include "offline/exact.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/interval_set.h"
#include "offline/heuristic.h"
#include "support/assert.h"
#include "support/parallel.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

using Mask = std::uint64_t;

/// Sorted, disjoint, non-abutting components of the placed union — a plain
/// vector so child states are one bounded memmove, not an IntervalSet.
using Components = std::vector<Interval>;

constexpr Mask bit(JobId j) { return Mask{1} << j; }

Time components_measure(const Components& comps) {
  Time total = Time::zero();
  for (const Interval& c : comps) {
    total += c.length();
  }
  return total;
}

/// dst = src with `iv` merged in (abutting intervals coalesce, matching
/// IntervalSet semantics so spans agree tick-for-tick).
void with_inserted(const Components& src, const Interval& iv,
                   Components& dst) {
  dst.clear();
  std::size_t i = 0;
  while (i < src.size() && src[i].hi < iv.lo) {
    dst.push_back(src[i++]);
  }
  Time lo = iv.lo;
  Time hi = iv.hi;
  while (i < src.size() && src[i].lo <= hi) {
    lo = std::min(lo, src[i].lo);
    hi = std::max(hi, src[i].hi);
    ++i;
  }
  dst.push_back(Interval(lo, hi));
  while (i < src.size()) {
    dst.push_back(src[i++]);
  }
}

/// Measure of `iv` not covered by the components — the marginal span cost
/// of placing an interval there.
Time uncovered(const Components& comps, const Interval& iv) {
  Time covered = Time::zero();
  for (const Interval& c : comps) {
    if (c.lo >= iv.hi) {
      break;
    }
    covered += c.intersect(iv).length();
  }
  return iv.length() - covered;
}

/// State shared between the per-worker searches of one exact_optimal call.
struct Shared {
  std::atomic<std::int64_t> incumbent;  // best known complete-span ticks
  std::atomic<std::size_t> nodes{0};
  std::atomic<bool> aborted{false};
  std::size_t max_nodes;

  Shared(Time seed_span, std::size_t budget)
      : incumbent(seed_span.ticks()), max_nodes(budget) {}

  void offer_incumbent(Time span) {
    std::int64_t cur = incumbent.load(std::memory_order_relaxed);
    while (span.ticks() < cur &&
           !incumbent.compare_exchange_weak(cur, span.ticks(),
                                            std::memory_order_relaxed)) {
    }
  }
};

struct StateKey {
  Mask mask = 0;
  std::vector<std::int64_t> comps;  // flattened (lo, hi) ticks

  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& key) const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ key.mask;
    for (const std::int64_t v : key.comps) {
      h ^= static_cast<std::uint64_t>(v) + 0x9E3779B97F4A7C15ULL + (h << 6) +
           (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

struct CacheEntry {
  std::int64_t value;
  bool exact;  // true: value == optimal completion; false: value <= it
};

struct Move {
  JobId job;
  Time start;
  Time marginal;
};

struct Outcome {
  Time value;
  bool exact;
};

/// One worker's search: owns its transposition cache and scratch buffers;
/// shares the incumbent / node budget through Shared.
class Search {
 public:
  Search(const Instance& inst, const ExactOptions& opts, Shared& shared)
      : inst_(inst), opts_(opts), shared_(shared) {
    const std::size_t n = inst.size();
    lengths_.resize(n);
    lower_twins_.assign(n, 0);
    for (JobId j = 0; j < n; ++j) {
      const Job& job = inst.job(j);
      lengths_[j] = job.length;
      for (JobId k = 0; k < j; ++k) {
        const Job& other = inst.job(k);
        if (other.arrival == job.arrival && other.deadline == job.deadline &&
            other.length == job.length) {
          lower_twins_[j] |= bit(k);
        }
      }
      const Interval mand(job.deadline, job.arrival + job.length);
      if (!mand.empty()) {
        mandatory_.push_back(MandatoryRegion{mand, j});
      }
    }
    std::stable_sort(mandatory_.begin(), mandatory_.end(),
                     [](const MandatoryRegion& a, const MandatoryRegion& b) {
                       return a.iv.lo < b.iv.lo;
                     });
    by_arrival_ = inst.ids_by_arrival();

    if (opts.use_integral_fast_path) {
      std::int64_t g = 0;
      for (const Job& job : inst.jobs()) {
        g = std::gcd(g, job.arrival.ticks());
        g = std::gcd(g, job.deadline.ticks());
        g = std::gcd(g, job.length.ticks());
      }
      std::int64_t max_starts = 0;
      if (g > 0) {
        for (const Job& job : inst.jobs()) {
          max_starts =
              std::max(max_starts, (job.deadline - job.arrival).ticks() / g + 1);
        }
      }
      if (g > 0 && max_starts <= kMaxGridStarts) {
        grid_ = g;
        // Most-constrained-first, matching the reference DFS: small laxity
        // branches less, longer jobs among equals prune earlier.
        fixed_order_.resize(n);
        for (JobId j = 0; j < n; ++j) {
          fixed_order_[j] = j;
        }
        std::sort(fixed_order_.begin(), fixed_order_.end(),
                  [&inst](JobId a, JobId b) {
                    const Job& ja = inst.job(a);
                    const Job& jb = inst.job(b);
                    if (ja.laxity() != jb.laxity()) {
                      return ja.laxity() < jb.laxity();
                    }
                    if (ja.length != jb.length) {
                      return ja.length > jb.length;
                    }
                    return a < b;
                  });
      }
    }
    lb_scratch_.resize(n + 2);
    cand_scratch_.resize(n + 2);
    move_scratch_.resize(n + 2);
    comp_scratch_.resize(n + 2);
    keys_.resize(n + 2);
    path_.resize(n);
    best_starts_.resize(n);
  }

  /// Fail-soft search: returns (value, exact) where exact means value is
  /// the optimal completion span of the state; otherwise value is a valid
  /// lower bound on it (>= bound unless the run aborted).
  Outcome solve(Mask mask, const Components& comps, Time bound,
                std::size_t depth) {
    if (shared_.aborted.load(std::memory_order_relaxed)) {
      return Outcome{bound, false};
    }
    if (shared_.nodes.fetch_add(1, std::memory_order_relaxed) + 1 >
        shared_.max_nodes) {
      shared_.aborted.store(true, std::memory_order_relaxed);
      return Outcome{bound, false};
    }
    if (mask == 0) {
      const Time span = components_measure(comps);
      if (span < best_sched_span_) {
        best_sched_span_ = span;
        best_starts_ = path_;
      }
      shared_.offer_incumbent(span);
      return Outcome{span, true};
    }
    Time eff = bound;
    if (!reconstructing_) {
      eff = std::min(
          eff, Time(shared_.incumbent.load(std::memory_order_relaxed)));
    }
    // The cache only pays for itself once a search is big enough to revisit
    // states; below the activation threshold the per-node key/hash/insert
    // cost outweighs any possible hit, so easy instances skip it entirely.
    const bool cacheable = opts_.max_cache_entries > 0 &&
                           std::popcount(mask) >= 2 &&
                           ++local_nodes_ > kCacheActivationNodes;
    if (cacheable) {
      StateKey& key = fill_key(mask, comps, depth);
      const auto it = cache_.find(key);
      if (it != cache_.end()) {
        if (it->second.exact) {
          ++cache_hits_;
          const Time value(it->second.value);
          shared_.offer_incumbent(value);
          return Outcome{value, true};
        }
        if (Time(it->second.value) >= eff) {
          return Outcome{Time(it->second.value), false};
        }
      }
    }
    const Time lb = lower_bound(mask, comps, depth, eff);
    if (lb >= eff) {
      if (cacheable) {
        store(fill_key(mask, comps, depth), lb, false);
      }
      return Outcome{lb, false};
    }
    auto& moves = move_scratch_[depth];
    collect_moves(mask, comps, depth, moves);
    Time best = Time::max();
    bool best_exact = false;
    auto& child = comp_scratch_[depth];
    for (const Move& m : moves) {
      const Time child_bound = std::min(eff, best);
      with_inserted(comps, inst_.job(m.job).active_interval(m.start), child);
      path_[m.job] = m.start;
      const Outcome o =
          solve(mask & ~bit(m.job), child, child_bound, depth + 1);
      if (o.value < best || (o.value == best && o.exact && !best_exact)) {
        best = o.value;
        best_exact = o.exact;
      }
      if (shared_.aborted.load(std::memory_order_relaxed)) {
        return Outcome{best, false};
      }
      if (best_exact && best <= lb) {
        break;  // optimality-gap cut: no child can beat the admissible bound
      }
    }
    if (cacheable) {
      store(fill_key(mask, comps, depth), best, best_exact);
    }
    return Outcome{best, best_exact};
  }

  /// Walks the cache (re-solving where entries are missing or inexact) to
  /// extract starts achieving `target` from `state`. Returns false only if
  /// the node budget ran out mid-walk.
  bool reconstruct(Mask mask, Components comps, Time target,
                   std::vector<Time>& starts) {
    reconstructing_ = true;
    std::vector<Move> moves;
    Components child;
    std::size_t depth = inst_.size() - static_cast<std::size_t>(
                                           std::popcount(mask));
    while (mask != 0) {
      collect_moves(mask, comps, depth, moves);
      bool advanced = false;
      for (const Move& m : moves) {
        with_inserted(comps, inst_.job(m.job).active_interval(m.start),
                      child);
        const Mask child_mask = mask & ~bit(m.job);
        Outcome o{Time::zero(), false};
        bool have = false;
        if (opts_.max_cache_entries > 0 && std::popcount(child_mask) >= 2) {
          const auto it = cache_.find(fill_key(child_mask, child, depth));
          if (it != cache_.end() && it->second.exact) {
            o = Outcome{Time(it->second.value), true};
            have = true;
          }
        }
        if (!have) {
          o = solve(child_mask, child, target + Time(1), depth + 1);
          if (shared_.aborted.load(std::memory_order_relaxed)) {
            reconstructing_ = false;
            return false;
          }
        }
        const Time total = o.value;
        if (o.exact && total == target) {
          starts[m.job] = m.start;
          comps = child;
          mask = child_mask;
          ++depth;
          advanced = true;
          break;
        }
      }
      FJS_CHECK(advanced, "exact: reconstruction found no child achieving "
                          "the proven optimal span");
    }
    reconstructing_ = false;
    FJS_CHECK(components_measure(comps) == target,
              "exact: reconstructed span mismatch");
    return true;
  }

  Time best_sched_span() const { return best_sched_span_; }
  const std::vector<Time>& best_starts() const { return best_starts_; }
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_entries() const { return cache_.size(); }

  /// Root branching, shared with the parallel driver: moves on the empty
  /// union, deterministic order.
  void root_moves(Mask mask, std::vector<Move>& out) {
    collect_moves(mask, Components{}, 0, out);
  }

 private:
  struct MandatoryRegion {
    Interval iv;
    JobId job;
  };

  /// Builds the cache key in the depth's scratch slot (no allocation once
  /// warm). The reference stays valid until the next fill at this depth;
  /// store() moves it out.
  StateKey& fill_key(Mask mask, const Components& comps, std::size_t depth) {
    StateKey& key = keys_[depth];
    key.mask = mask;
    key.comps.clear();
    key.comps.reserve(comps.size() * 2);
    for (const Interval& c : comps) {
      key.comps.push_back(c.lo.ticks());
      key.comps.push_back(c.hi.ticks());
    }
    return key;
  }

  void store(StateKey& key, Time value, bool exact) {
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (exact) {
        it->second = CacheEntry{value.ticks(), true};
      } else if (!it->second.exact) {
        it->second.value = std::max(it->second.value, value.ticks());
      }
      return;
    }
    if (cache_.size() >= opts_.max_cache_entries) {
      return;  // full: stop inserting, keep serving lookups
    }
    cache_.emplace(std::move(key), CacheEntry{value.ticks(), exact});
  }

  /// Admissible bound: measure(placed ∪ mandatory(remaining)), merged on a
  /// scratch buffer, maxed with the chain bound. The chain term is skipped
  /// when the mandatory merge alone already reaches `eff` — the caller
  /// prunes either way.
  Time lower_bound(Mask mask, const Components& comps, std::size_t depth,
                   Time eff) {
    auto& scratch = lb_scratch_[depth];
    scratch.clear();
    std::size_t ci = 0;
    for (const MandatoryRegion& m : mandatory_) {
      if ((mask & bit(m.job)) == 0) {
        continue;
      }
      while (ci < comps.size() && comps[ci].lo <= m.iv.lo) {
        scratch.push_back(comps[ci++]);
      }
      scratch.push_back(m.iv);
    }
    while (ci < comps.size()) {
      scratch.push_back(comps[ci++]);
    }
    const Time lb = IntervalSet::sorted_union_measure(scratch);
    if (lb >= eff) {
      return lb;
    }
    return std::max(lb, chain_bound(mask));
  }

  /// Chain bound over the remaining jobs: along any chain with
  /// d(I) + p(I) <= a(J) the placements are disjoint, so the span is at
  /// least the heaviest chain weight (single jobs included, so this
  /// subsumes the max-remaining-length bound). Independent of the placed
  /// union, hence memoized per remaining-job mask — masks repeat across
  /// permutations far more often than full states.
  Time chain_bound(Mask mask) {
    const auto it = chain_memo_.find(mask);
    if (it != chain_memo_.end()) {
      return it->second;
    }
    std::map<Time, Time> pareto;  // completion key -> best chain weight
    Time best = Time::zero();
    for (const JobId id : by_arrival_) {
      if ((mask & bit(id)) == 0) {
        continue;
      }
      const Job& j = inst_.job(id);
      Time prefix = Time::zero();
      {
        const auto up = pareto.upper_bound(j.arrival);
        if (up != pareto.begin()) {
          prefix = std::prev(up)->second;
        }
      }
      const Time f = prefix + j.length;
      best = std::max(best, f);
      const Time key = j.deadline + j.length;
      const auto up = pareto.upper_bound(key);
      if (up == pareto.begin() || std::prev(up)->second < f) {
        const auto [pos, ignored] = pareto.insert_or_assign(key, f);
        auto next = std::next(pos);
        while (next != pareto.end() && next->second <= f) {
          next = pareto.erase(next);
        }
      }
    }
    chain_memo_.emplace(mask, best);
    return best;
  }

  /// True iff the job has a start whose whole active interval is already
  /// covered; reports the leftmost such start.
  bool zero_marginal_start(const Components& comps, const Job& job,
                           Time* out) const {
    for (const Interval& c : comps) {
      if (c.lo > job.deadline) {
        break;
      }
      const Time lo = std::max(c.lo, job.arrival);
      const Time hi = std::min(c.hi - job.length, job.deadline);
      if (lo <= hi) {
        *out = lo;
        return true;
      }
    }
    return false;
  }

  /// Children of a node, cheapest marginal first. Applies dominance (a
  /// zero-marginal placement is committed as the single forced move) and
  /// twin symmetry breaking. Deterministic — reconstruction replays it.
  void collect_moves(Mask mask, const Components& comps, std::size_t depth,
                     std::vector<Move>& moves) {
    moves.clear();
    for (Mask rest = mask; rest != 0; rest &= rest - 1) {
      const JobId j = static_cast<JobId>(std::countr_zero(rest));
      if ((mask & lower_twins_[j]) != 0) {
        continue;  // an identical lower-id job stands in for this one
      }
      Time s;
      if (zero_marginal_start(comps, inst_.job(j), &s)) {
        moves.push_back(Move{j, s, Time::zero()});
        return;  // dominance: free placement, no branching
      }
    }
    if (grid_ != 0) {
      // Integral fast path: one fixed job per depth, grid starts only.
      JobId j = 0;
      for (const JobId candidate : fixed_order_) {
        if ((mask & bit(candidate)) != 0) {
          j = candidate;
          break;
        }
      }
      const Job& job = inst_.job(j);
      for (std::int64_t s = job.arrival.ticks(); s <= job.deadline.ticks();
           s += grid_) {
        const Time start(s);
        moves.push_back(
            Move{j, start, uncovered(comps, job.active_interval(start))});
      }
      std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
        if (a.marginal != b.marginal) {
          return a.marginal < b.marginal;
        }
        return a.start < b.start;
      });
      return;
    }
    auto& cands = cand_scratch_[depth];
    for (Mask rest = mask; rest != 0; rest &= rest - 1) {
      const JobId j = static_cast<JobId>(std::countr_zero(rest));
      if ((mask & lower_twins_[j]) != 0) {
        continue;
      }
      const Job& job = inst_.job(j);
      cands.clear();
      cands.push_back(job.arrival);
      cands.push_back(job.deadline);
      for (const Interval& c : comps) {
        for (const Time e : {c.lo, c.hi}) {
          for (const Time s : {e, e - job.length}) {
            if (s >= job.arrival && s <= job.deadline) {
              cands.push_back(s);
            }
          }
        }
      }
      std::sort(cands.begin(), cands.end());
      cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
      for (const Time s : cands) {
        moves.push_back(Move{j, s, uncovered(comps, job.active_interval(s))});
      }
    }
    // (marginal, job, start) is unique per move, so plain sort is
    // deterministic.
    std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
      if (a.marginal != b.marginal) {
        return a.marginal < b.marginal;
      }
      if (a.job != b.job) {
        return a.job < b.job;
      }
      return a.start < b.start;
    });
  }

  const Instance& inst_;
  const ExactOptions& opts_;
  Shared& shared_;
  static constexpr std::int64_t kMaxGridStarts = 128;
  static constexpr std::size_t kCacheActivationNodes = 256;
  std::size_t local_nodes_ = 0;  // this worker's nodes, for cache activation

  std::vector<Time> lengths_;
  std::vector<Mask> lower_twins_;
  std::vector<JobId> by_arrival_;
  std::int64_t grid_ = 0;           // grid step in ticks; 0 = general mode
  std::vector<JobId> fixed_order_;  // fast path's per-depth job order
  std::vector<MandatoryRegion> mandatory_;  // sorted by left endpoint
  std::unordered_map<Mask, Time> chain_memo_;
  std::unordered_map<StateKey, CacheEntry, StateKeyHash> cache_;
  std::size_t cache_hits_ = 0;
  bool reconstructing_ = false;
  // Depth-indexed scratch (the recursion touches one slot per level).
  std::vector<std::vector<Interval>> lb_scratch_;
  std::vector<std::vector<Time>> cand_scratch_;
  std::vector<std::vector<Move>> move_scratch_;
  std::vector<Components> comp_scratch_;
  std::vector<StateKey> keys_;
  // Current path's starts by job id; complete exactly at terminals.
  std::vector<Time> path_;
  Time best_sched_span_ = Time::max();
  std::vector<Time> best_starts_;
};

Schedule schedule_from_starts(const Instance& inst,
                              const std::vector<Time>& starts) {
  Schedule schedule(inst.size());
  for (JobId j = 0; j < inst.size(); ++j) {
    schedule.set_start(j, starts[j]);
  }
  schedule.validate(inst);
  return schedule;
}

ExactResult finish(const Instance& inst, Time span, Schedule schedule,
                   ExactStatus status, const Shared& shared,
                   std::size_t cache_hits, std::size_t cache_entries) {
  FJS_CHECK(schedule.span(inst) == span,
            "exact: span mismatch on reconstruction");
  ExactResult result;
  result.span = span;
  result.schedule = std::move(schedule);
  result.nodes_explored = shared.nodes.load(std::memory_order_relaxed);
  result.status = status;
  result.cache_hits = cache_hits;
  result.cache_entries = cache_entries;
  return result;
}

}  // namespace

ExactResult exact_optimal(const Instance& instance, ExactOptions options) {
  if (instance.empty()) {
    return ExactResult{.span = Time::zero(), .schedule = Schedule(0)};
  }
  FJS_REQUIRE(instance.size() <= 64,
              "exact: more than 64 jobs — use the heuristic + lower bounds");

  // Seed incumbent: a valid schedule exists before the first node, so a
  // budget-exceeded result always carries a usable best-so-far, and the
  // admissible bound prunes from the start.
  Schedule seed_schedule(instance.size());
  if (options.seed_with_heuristic) {
    HeuristicOptions h;
    h.restarts = 0;
    h.max_passes = 8;
    seed_schedule = heuristic_optimal(instance, h).schedule;
  } else {
    for (JobId j = 0; j < instance.size(); ++j) {
      seed_schedule.set_start(j, instance.job(j).arrival);
    }
  }
  seed_schedule.validate(instance);
  Time seed_span = seed_schedule.span(instance);
  if (options.seed_schedule != nullptr) {
    options.seed_schedule->validate(instance);
    const Time caller_span = options.seed_schedule->span(instance);
    if (caller_span < seed_span) {
      seed_schedule = *options.seed_schedule;
      seed_span = caller_span;
    }
  }

  Shared shared(seed_span, options.max_nodes);
  const Mask full = instance.size() == 64
                        ? ~Mask{0}
                        : (Mask{1} << instance.size()) - 1;

  // A floor at or above the seed span proves nothing the seed doesn't; it
  // only engages when it would genuinely clamp the root bound.
  const bool floor_active = options.decision_floor > Time::zero() &&
                            options.decision_floor < seed_span;
  const std::size_t workers = (options.pool != nullptr && !floor_active)
                                  ? options.pool->thread_count()
                                  : 1;
  if (workers <= 1 || instance.size() < 8) {
    Search search(instance, options, shared);
    const Outcome o = search.solve(
        full, Components{},
        floor_active ? options.decision_floor : seed_span, 0);
    if (shared.aborted.load(std::memory_order_relaxed)) {
      // Best-so-far: the seed unless the search surfaced a better terminal.
      if (search.best_sched_span() < seed_span) {
        return finish(instance, search.best_sched_span(),
                      schedule_from_starts(instance, search.best_starts()),
                      ExactStatus::kBudgetExceeded, shared,
                      search.cache_hits(), search.cache_entries());
      }
      return finish(instance, seed_span, std::move(seed_schedule),
                    ExactStatus::kBudgetExceeded, shared, search.cache_hits(),
                    search.cache_entries());
    }
    if (!o.exact || o.value >= seed_span) {
      if (!o.exact && floor_active && o.value < seed_span) {
        // Fail-soft guarantee: a non-exact, non-aborted outcome is a valid
        // lower bound on OPT no smaller than the root bound — the floor.
        FJS_CHECK(o.value >= options.decision_floor,
                  "exact: floor search returned a bound below the floor");
        return finish(instance, seed_span, std::move(seed_schedule),
                      ExactStatus::kFloorProven, shared, search.cache_hits(),
                      search.cache_entries());
      }
      // The search proved nothing beats the seed: the seed is optimal.
      return finish(instance, seed_span, std::move(seed_schedule),
                    ExactStatus::kOptimal, shared, search.cache_hits(),
                    search.cache_entries());
    }
    if (search.best_sched_span() == o.value) {
      return finish(instance, o.value,
                    schedule_from_starts(instance, search.best_starts()),
                    ExactStatus::kOptimal, shared, search.cache_hits(),
                    search.cache_entries());
    }
    std::vector<Time> starts(instance.size());
    if (!search.reconstruct(full, Components{}, o.value, starts)) {
      return finish(instance, seed_span, std::move(seed_schedule),
                    ExactStatus::kBudgetExceeded, shared, search.cache_hits(),
                    search.cache_entries());
    }
    return finish(instance, o.value, schedule_from_starts(instance, starts),
                  ExactStatus::kOptimal, shared, search.cache_hits(),
                  search.cache_entries());
  }

  // Parallel root split: the root's (job, start) branches are chunked
  // contiguously across workers, each with its own cache, all sharing the
  // atomic incumbent. Reduction runs in branch order, so the optimal span
  // is independent of the thread count and of scheduling timing.
  std::vector<Move> roots;
  {
    Search probe(instance, options, shared);
    probe.root_moves(full, roots);
  }
  const std::size_t chunks = std::min(workers, roots.size());
  std::vector<std::unique_ptr<Search>> searches(chunks);
  std::vector<Outcome> outcomes(roots.size(),
                                Outcome{Time::max(), false});
  parallel_for(*options.pool, chunks, [&](std::size_t c) {
    searches[c] = std::make_unique<Search>(instance, options, shared);
    const std::size_t begin = c * roots.size() / chunks;
    const std::size_t end = (c + 1) * roots.size() / chunks;
    Components child;
    for (std::size_t i = begin; i < end; ++i) {
      const Move& m = roots[i];
      with_inserted(Components{}, instance.job(m.job).active_interval(m.start),
                    child);
      outcomes[i] = searches[c]->solve(
          full & ~bit(m.job), child,
          Time(shared.incumbent.load(std::memory_order_relaxed)), 1);
    }
  });

  std::size_t cache_hits = 0;
  std::size_t cache_entries = 0;
  for (const auto& s : searches) {
    if (s != nullptr) {
      cache_hits += s->cache_hits();
      cache_entries += s->cache_entries();
    }
  }

  Time best = seed_span;
  std::size_t best_idx = roots.size();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (outcomes[i].exact && outcomes[i].value < best) {
      best = outcomes[i].value;
      best_idx = i;
    }
  }
  const bool aborted = shared.aborted.load(std::memory_order_relaxed);
  if (best_idx == roots.size()) {
    // Seed optimal (nothing strictly better), or budget ran out first.
    return finish(instance, seed_span, std::move(seed_schedule),
                  aborted ? ExactStatus::kBudgetExceeded
                          : ExactStatus::kOptimal,
                  shared, cache_hits, cache_entries);
  }
  // Reconstruct the winner's subtree inside its own cache.
  const std::size_t winner_chunk = [&] {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * roots.size() / chunks;
      const std::size_t end = (c + 1) * roots.size() / chunks;
      if (best_idx >= begin && best_idx < end) {
        return c;
      }
    }
    FJS_UNREACHABLE("exact: winning root branch outside every chunk");
  }();
  Search& winner = *searches[winner_chunk];
  std::vector<Time> starts(instance.size());
  const Move& wm = roots[best_idx];
  starts[wm.job] = wm.start;
  Components child;
  with_inserted(Components{}, instance.job(wm.job).active_interval(wm.start),
                child);
  if (!winner.reconstruct(full & ~bit(wm.job), std::move(child), best,
                          starts)) {
    return finish(instance, seed_span, std::move(seed_schedule),
                  ExactStatus::kBudgetExceeded, shared, cache_hits,
                  cache_entries);
  }
  return finish(instance, best, schedule_from_starts(instance, starts),
                aborted ? ExactStatus::kBudgetExceeded : ExactStatus::kOptimal,
                shared, cache_hits, cache_entries);
}

Time exact_optimal_span(const Instance& instance, ExactOptions options) {
  const ExactResult result = exact_optimal(instance, std::move(options));
  FJS_REQUIRE(result.optimal(),
              "exact: node budget exhausted — instance too large for the "
              "exact solver; use exact_optimal for the best-so-far result");
  return result.span;
}

}  // namespace fjs
