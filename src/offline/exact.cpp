// Branch-and-bound exact solver. See exact.h for the critical-start
// completeness argument; the short version of the design:
//
//  * Nodes are (remaining-job set, union of placed intervals). Branching is
//    over (job, critical start) pairs — job choice included, so the
//    anchor-first placement orders the completeness proof needs are
//    reachable.
//  * A transposition cache keyed on the node state collapses the
//    permutation redundancy job-choice branching creates: the minimal
//    completion span is a function of the state alone, not of the path.
//    Entries are fail-soft: exact values short-circuit whole subtrees,
//    lower bounds prune re-visits under a tighter incumbent.
//  * The admissible bound merges the placed components with the remaining
//    jobs' mandatory regions through IntervalSet::sorted_union_measure on
//    depth-indexed scratch buffers — no IntervalSet materialization per
//    node.
//  * Budget exhaustion is a structured result (best-so-far incumbent), not
//    an assertion: miners and sweeps decide how to handle it.
#include "offline/exact.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/interval_set.h"
#include "offline/heuristic.h"
#include "support/assert.h"
#include "support/parallel.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

using Mask = std::uint64_t;

/// Sorted, disjoint, non-abutting components of the placed union — a plain
/// vector so child states are one bounded memmove, not an IntervalSet.
using Components = std::vector<Interval>;

constexpr Mask bit(JobId j) { return Mask{1} << j; }

/// Insertion sort for the tiny per-call id orderings: at mining sizes
/// std::sort's introsort machinery costs more than the sort itself. The
/// comparators used here are strict total orders (id tie-break), so the
/// result is exactly std::sort's.
template <typename Less>
void sort_ids(std::vector<JobId>& ids, Less less) {
  if (ids.size() > 32) {
    std::sort(ids.begin(), ids.end(), less);
    return;
  }
  for (std::size_t i = 1; i < ids.size(); ++i) {
    const JobId v = ids[i];
    std::size_t j = i;
    while (j > 0 && less(v, ids[j - 1])) {
      ids[j] = ids[j - 1];
      --j;
    }
    ids[j] = v;
  }
}

Time components_measure(const Components& comps) {
  Time total = Time::zero();
  for (const Interval& c : comps) {
    total += c.length();
  }
  return total;
}

/// dst = src with `iv` merged in (abutting intervals coalesce, matching
/// IntervalSet semantics so spans agree tick-for-tick). Force-inlined:
/// this runs once per search node and the call overhead is measurable at
/// miner certification rates.
[[gnu::always_inline]] inline void with_inserted(const Components& src,
                                                 const Interval& iv,
                                                 Components& dst) {
  dst.clear();
  std::size_t i = 0;
  while (i < src.size() && src[i].hi < iv.lo) {
    dst.push_back(src[i++]);
  }
  Time lo = iv.lo;
  Time hi = iv.hi;
  while (i < src.size() && src[i].lo <= hi) {
    lo = std::min(lo, src[i].lo);
    hi = std::max(hi, src[i].hi);
    ++i;
  }
  dst.push_back(Interval(lo, hi));
  while (i < src.size()) {
    dst.push_back(src[i++]);
  }
}

/// Measure of `iv` not covered by the components — the marginal span cost
/// of placing an interval there.
Time uncovered(const Components& comps, const Interval& iv) {
  Time covered = Time::zero();
  for (const Interval& c : comps) {
    if (c.lo >= iv.hi) {
      break;
    }
    if (c.hi <= iv.lo) {
      continue;
    }
    covered += c.intersect(iv).length();
  }
  return iv.length() - covered;
}

/// Monotone coverage cursor: C(x) = measure of the components' union in
/// (-inf, x), evaluated for a non-decreasing sequence of x. Two cursors
/// (one per interval endpoint) turn a grid of uncovered() queries into one
/// O(starts + comps) sweep with tick-identical results:
///   uncovered(comps, [s, s+p)) == p - (C(s+p) - C(s)).
class CoverageCursor {
 public:
  explicit CoverageCursor(const Components& comps) : comps_(&comps) {}

  std::int64_t at(std::int64_t x) {
    while (i_ < comps_->size() && (*comps_)[i_].hi.ticks() <= x) {
      acc_ += (*comps_)[i_].length().ticks();
      ++i_;
    }
    if (i_ < comps_->size() && (*comps_)[i_].lo.ticks() < x) {
      return acc_ + (x - (*comps_)[i_].lo.ticks());
    }
    return acc_;
  }

 private:
  const Components* comps_;
  std::size_t i_ = 0;
  std::int64_t acc_ = 0;
};

/// State shared between the per-worker searches of one exact_optimal call.
struct Shared {
  std::atomic<std::int64_t> incumbent;  // best known complete-span ticks
  std::atomic<std::size_t> nodes{0};
  std::atomic<bool> aborted{false};
  std::size_t max_nodes;

  Shared(Time seed_span, std::size_t budget)
      : incumbent(seed_span.ticks()), max_nodes(budget) {}

  void offer_incumbent(Time span) {
    std::int64_t cur = incumbent.load(std::memory_order_relaxed);
    while (span.ticks() < cur &&
           !incumbent.compare_exchange_weak(cur, span.ticks(),
                                            std::memory_order_relaxed)) {
    }
  }
};

struct StateKey {
  Mask mask = 0;
  std::vector<std::int64_t> comps;  // flattened (lo, hi) ticks

  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& key) const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ key.mask;
    for (const std::int64_t v : key.comps) {
      h ^= static_cast<std::uint64_t>(v) + 0x9E3779B97F4A7C15ULL + (h << 6) +
           (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

struct CacheEntry {
  std::int64_t value;
  bool exact;  // true: value == optimal completion; false: value <= it
};

struct Move {
  JobId job;
  Time start;
  Time marginal;
};

struct Outcome {
  Time value;
  bool exact;
};

/// One worker's search: owns its transposition cache and scratch buffers;
/// shares the incumbent / node budget through Shared. Reusable: init()
/// rebinds to a new instance while keeping every scratch buffer's capacity,
/// so hot loops (the miner certifies thousands of candidates per mine) pay
/// no per-call allocation churn — the serial driver keeps one thread_local
/// Search warm.
class Search {
 public:
  Search() = default;

  void init(InstanceView inst, const ExactOptions& opts, Shared& shared,
            bool serial) {
    view_ = inst;
    opts_ = &opts;
    shared_ = &shared;
    serial_ = serial;
    serial_nodes_ = 0;
    serial_aborted_ = false;
    serial_incumbent_ = shared.incumbent.load(std::memory_order_relaxed);
    local_nodes_ = 0;
    cache_hits_ = 0;
    reconstructing_ = false;
    best_sched_span_ = Time::max();
    cache_.clear();
    mandatory_.clear();
    grid_ = 0;
    const std::size_t n = inst.size();
    chain_direct_active_ = n <= kChainDirectBits;
    if (chain_direct_active_) {
      const std::size_t slots = std::size_t{1} << n;
      if (chain_direct_.size() < slots) {
        chain_direct_.resize(slots);
        chain_stamp_.resize(slots, 0);
      }
      if (++chain_epoch_ == 0) {  // wrapped: stale stamps could collide
        std::fill(chain_stamp_.begin(), chain_stamp_.end(), 0);
        chain_epoch_ = 1;
      }
    } else {
      chain_memo_.clear();
    }
    lower_twins_.assign(n, 0);
    const std::span<const Time> arrivals = inst.arrivals();
    const std::span<const Time> deadlines = inst.deadlines();
    const std::span<const Time> lengths = inst.lengths();
    for (JobId j = 0; j < n; ++j) {
      for (JobId k = 0; k < j; ++k) {
        if (arrivals[k] == arrivals[j] && deadlines[k] == deadlines[j] &&
            lengths[k] == lengths[j]) {
          lower_twins_[j] |= bit(k);
        }
      }
      const Interval mand(deadlines[j], arrivals[j] + lengths[j]);
      if (!mand.empty()) {
        mandatory_.push_back(MandatoryRegion{mand, j});
      }
    }
    // Insertion sort on iv.lo: stable (strict < keeps ties in push order,
    // i.e. job-id order), so the result is exactly std::stable_sort's
    // without its temporary-buffer machinery — this runs once per solver
    // call and the miner makes ~100 calls per mine.
    for (std::size_t i = 1; i < mandatory_.size(); ++i) {
      const MandatoryRegion m = mandatory_[i];
      std::size_t k = i;
      while (k > 0 && m.iv.lo < mandatory_[k - 1].iv.lo) {
        mandatory_[k] = mandatory_[k - 1];
        --k;
      }
      mandatory_[k] = m;
    }
    // Same (arrival, id) order as Instance::ids_by_arrival(), filled in
    // place: init runs once per solver call and the per-call allocation
    // shows up in miner profiles.
    by_arrival_.resize(n);
    for (JobId j = 0; j < n; ++j) {
      by_arrival_[j] = j;
    }
    sort_ids(by_arrival_,
             [arrivals](JobId a, JobId b) {
               if (arrivals[a] != arrivals[b]) {
                 return arrivals[a] < arrivals[b];
               }
               return a < b;
             });

    fixed_order_.clear();
    if (opts.use_integral_fast_path) {
      std::int64_t g = 0;
      for (std::size_t i = 0; i < n; ++i) {
        g = std::gcd(g, arrivals[i].ticks());
        g = std::gcd(g, deadlines[i].ticks());
        g = std::gcd(g, lengths[i].ticks());
      }
      std::int64_t max_starts = 0;
      if (g > 0) {
        for (std::size_t i = 0; i < n; ++i) {
          max_starts =
              std::max(max_starts, (deadlines[i] - arrivals[i]).ticks() / g + 1);
        }
      }
      if (g > 0 && max_starts <= kMaxGridStarts) {
        grid_ = g;
        // Most-constrained-first, matching the reference DFS: small laxity
        // branches less, longer jobs among equals prune earlier.
        fixed_order_.resize(n);
        for (JobId j = 0; j < n; ++j) {
          fixed_order_[j] = j;
        }
        sort_ids(fixed_order_,
                 [arrivals, deadlines, lengths](JobId a, JobId b) {
                   const Time la = deadlines[a] - arrivals[a];
                   const Time lb = deadlines[b] - arrivals[b];
                   if (la != lb) {
                     return la < lb;
                   }
                   if (lengths[a] != lengths[b]) {
                     return lengths[a] > lengths[b];
                   }
                   return a < b;
                 });
      }
    }
    if (lb_scratch_.size() < n + 2) {
      lb_scratch_.resize(n + 2);
      cand_scratch_.resize(n + 2);
      move_scratch_.resize(n + 2);
      comp_scratch_.resize(n + 2);
      la_scratch_.resize(n + 2);
      la_unc_scratch_.resize(n + 2);
      grid_key_scratch_.resize(n + 2);
      keys_.resize(n + 2);
    }
    path_.resize(n);
    best_starts_.resize(n);
  }

  /// Serial mode keeps the node/abort/incumbent counters in plain members
  /// (the atomic fetch_add is a measurable per-node tax); the driver folds
  /// them back into Shared when the search returns.
  void flush_serial_counters() {
    if (!serial_) {
      return;
    }
    shared_->nodes.store(serial_nodes_, std::memory_order_relaxed);
    if (serial_aborted_) {
      shared_->aborted.store(true, std::memory_order_relaxed);
    }
    shared_->offer_incumbent(Time(serial_incumbent_));
  }

  /// Fail-soft search: returns (value, exact) where exact means value is
  /// the optimal completion span of the state; otherwise value is a valid
  /// lower bound on it (>= bound unless the run aborted).
  Outcome solve(Mask mask, const Components& comps, Time bound,
                std::size_t depth) {
    if (aborted()) {
      return Outcome{bound, false};
    }
    if (count_node()) {
      return Outcome{bound, false};
    }
    if (mask == 0) {
      const Time span = components_measure(comps);
      if (span < best_sched_span_) {
        best_sched_span_ = span;
        if (!opts_->span_only) {
          best_starts_ = path_;
        }
      }
      offer_incumbent(span);
      return Outcome{span, true};
    }
    Time eff = bound;
    if (!reconstructing_) {
      eff = std::min(eff, incumbent());
    }
    // The cache only pays for itself once a search is big enough to revisit
    // states; below the activation threshold the per-node key/hash/insert
    // cost outweighs any possible hit, so easy instances skip it entirely.
    const bool cacheable = opts_->max_cache_entries > 0 &&
                           std::popcount(mask) >= 2 &&
                           ++local_nodes_ > kCacheActivationNodes;
    if (cacheable) {
      StateKey& key = fill_key(mask, comps, depth);
      const auto it = cache_.find(key);
      if (it != cache_.end()) {
        if (it->second.exact) {
          ++cache_hits_;
          const Time value(it->second.value);
          offer_incumbent(value);
          return Outcome{value, true};
        }
        if (Time(it->second.value) >= eff) {
          return Outcome{Time(it->second.value), false};
        }
      }
    }
    // Admissible bound. In the integral fast path the branch job j* at this
    // node is fixed, so the union bound for `mask` decomposes as
    // measure(base ∪ mandatory(j*)) with base = comps ∪ mandatory(mask\j*)
    // — exactly the base every child's one-ply lookahead bound needs below.
    // Build it once, normalized, and reuse it for both (one merge per node
    // instead of two); the value is identical to lower_bound's union term.
    Time lb;
    auto& la_comps = la_scratch_[depth];
    bool la_ready = false;
    Time la_base = Time::zero();
    JobId bj = kInvalidJob;
    if (grid_ != 0) {
      bj = branch_job(mask);
      la_base = merged_components(mask & ~bit(bj), comps, depth, la_comps);
      la_ready = true;
      const Job bjob = view_.job(bj);
      const Interval mand(bjob.deadline, bjob.arrival + bjob.length);
      lb = la_base;
      if (!mand.empty()) {
        lb = lb + uncovered(la_comps, mand);
      }
      if (lb < eff) {
        // Chain + outside-window extension, as in lower_bound.
        const ChainInfo& ch = chain_info(mask);
        Time cb = ch.weight;
        if (cb > Time::zero()) {
          const Interval window(ch.lo, ch.hi);
          for (const Interval& c : comps) {
            cb += c.length() - c.intersect(window).length();
          }
        }
        lb = std::max(lb, cb);
      }
    } else {
      lb = lower_bound(mask, comps, depth, eff);
    }
    if (lb >= eff) {
      if (cacheable) {
        store(fill_key(mask, comps, depth), lb, false);
      }
      return Outcome{lb, false};
    }
    Time best = Time::max();
    bool best_exact = false;
    Time pruned_min = Time::max();
    auto& child = comp_scratch_[depth];
    bool expanded = false;
    if (grid_ != 0) {
      Move dom;
      if (dominance_move(mask, comps, &dom)) {
        // Single forced move: recurse directly, no lookahead machinery.
        with_inserted(comps, Interval::from_length(dom.start, view_.length(dom.job)),
                      child);
        path_[dom.job] = dom.start;
        const Outcome o = solve(mask & ~bit(dom.job), child, eff, depth + 1);
        best = o.value;
        best_exact = o.exact;
        if (aborted()) {
          return Outcome{best, false};
        }
        expanded = true;
      } else {
        // Fused grid expansion: one pass over the branch job's grid starts
        // computes the move ordering key (marginal vs the placed
        // components) and, when there is more than one start, the one-ply
        // lookahead bound (uncovered measure vs la_comps) for each start —
        // the Move structs the old two-pass shape materialized carried no
        // information beyond (key, start index). Each child's quick bound
        // (maxed with the move-invariant child chain weight) that already
        // reaches the pruning bar is cut without recursing; pruned
        // children still feed the fail-soft return value via pruned_min.
        const Job bjob = view_.job(bj);
        const std::int64_t a = bjob.arrival.ticks();
        const std::int64_t p = bjob.length.ticks();
        const bool lookahead = bjob.deadline.ticks() > a;
        Time la_chain = Time::zero();
        if (lookahead) {
          la_chain = chain_info(mask & ~bit(bj)).weight;
        }
        auto& keys = grid_key_scratch_[depth];
        auto& la_unc = la_unc_scratch_[depth];
        keys.clear();
        la_unc.clear();
        bool packable = true;
        {
          CoverageCursor lo_cursor(comps);
          CoverageCursor hi_cursor(comps);
          CoverageCursor la_lo(la_comps);
          CoverageCursor la_hi(la_comps);
          std::uint64_t idx = 0;
          for (std::int64_t s = a; s <= bjob.deadline.ticks(); s += grid_) {
            const std::int64_t marginal =
                p - (hi_cursor.at(s + p) - lo_cursor.at(s));
            packable = packable && marginal < (std::int64_t{1} << 56);
            keys.push_back((static_cast<std::uint64_t>(marginal) << 7) | idx);
            ++idx;
            if (lookahead) {
              la_unc.push_back(p - (la_hi.at(s + p) - la_lo.at(s)));
            }
          }
        }
        if (packable) {
          if (keys.size() <= 32) {
            // Insertion sort: same order as std::sort (keys are unique),
            // cheaper while the grid move list is short (the common case).
            for (std::size_t i = 1; i < keys.size(); ++i) {
              const std::uint64_t v = keys[i];
              std::size_t k = i;
              while (k > 0 && v < keys[k - 1]) {
                keys[k] = keys[k - 1];
                --k;
              }
              keys[k] = v;
            }
          } else {
            std::sort(keys.begin(), keys.end());
          }
          for (const std::uint64_t key : keys) {
            const auto gi = static_cast<std::size_t>(key & 0x7F);
            const Time child_bound = std::min(eff, best);
            if (lookahead) {
              const Time quick =
                  std::max(la_base + Time(la_unc[gi]), la_chain);
              if (quick >= child_bound) {
                pruned_min = std::min(pruned_min, quick);
                continue;
              }
            }
            const Time start(a + static_cast<std::int64_t>(gi) * grid_);
            with_inserted(comps, Interval::from_length(start, bjob.length),
                          child);
            path_[bj] = start;
            const Outcome o =
                solve(mask & ~bit(bj), child, child_bound, depth + 1);
            if (o.value < best || (o.value == best && o.exact && !best_exact)) {
              best = o.value;
              best_exact = o.exact;
            }
            if (aborted()) {
              return Outcome{best, false};
            }
            if (best_exact && best <= lb) {
              break;  // optimality-gap cut: no child can beat the bound
            }
          }
          expanded = true;
        }
        // Unpackable marginal (>= 2^56 ticks): fall through to the
        // comparator-sorted Move path below.
      }
    }
    if (!expanded) {
      auto& moves = move_scratch_[depth];
      collect_moves(mask, comps, depth, moves, bj);
      // One-ply lookahead pruning, two-pass shape (general mode never has
      // la_comps; the grid fallback re-sweeps into Move structs).
      const bool lookahead = la_ready && moves.size() > 1;
      Time la_chain = Time::zero();
      std::int64_t la_a = 0;
      auto& la_unc = la_unc_scratch_[depth];
      if (lookahead) {
        la_chain = chain_info(mask & ~bit(moves.front().job)).weight;
        const Job bjob = view_.job(moves.front().job);
        la_a = bjob.arrival.ticks();
        const std::int64_t p = bjob.length.ticks();
        la_unc.clear();
        CoverageCursor lo_cursor(la_comps);
        CoverageCursor hi_cursor(la_comps);
        for (std::int64_t s = la_a; s <= bjob.deadline.ticks(); s += grid_) {
          la_unc.push_back(p - (hi_cursor.at(s + p) - lo_cursor.at(s)));
        }
      }
      for (const Move& m : moves) {
        const Time child_bound = std::min(eff, best);
        if (lookahead) {
          const Time quick = std::max(
              la_base + Time(la_unc[static_cast<std::size_t>(
                            (m.start.ticks() - la_a) / grid_)]),
              la_chain);
          if (quick >= child_bound) {
            pruned_min = std::min(pruned_min, quick);
            continue;
          }
        }
        const Interval iv = view_.job(m.job).active_interval(m.start);
        with_inserted(comps, iv, child);
        path_[m.job] = m.start;
        const Outcome o =
            solve(mask & ~bit(m.job), child, child_bound, depth + 1);
        if (o.value < best || (o.value == best && o.exact && !best_exact)) {
          best = o.value;
          best_exact = o.exact;
        }
        if (aborted()) {
          return Outcome{best, false};
        }
        if (best_exact && best <= lb) {
          break;  // optimality-gap cut: no child can beat the bound
        }
      }
    }
    if (pruned_min < best) {
      // Every recursed child came back above some pruned child's quick
      // bound; the tightest knowledge about this node is that bound, and it
      // is not exact (the pruned subtree was never explored).
      best = pruned_min;
      best_exact = false;
    }
    if (cacheable) {
      store(fill_key(mask, comps, depth), best, best_exact);
    }
    return Outcome{best, best_exact};
  }

  /// Walks the cache (re-solving where entries are missing or inexact) to
  /// extract starts achieving `target` from `state`. Returns false only if
  /// the node budget ran out mid-walk.
  bool reconstruct(Mask mask, Components comps, Time target,
                   std::vector<Time>& starts) {
    reconstructing_ = true;
    std::vector<Move> moves;
    Components child;
    std::size_t depth = view_.size() - static_cast<std::size_t>(
                                           std::popcount(mask));
    while (mask != 0) {
      collect_moves(mask, comps, depth, moves);
      bool advanced = false;
      for (const Move& m : moves) {
        with_inserted(comps, view_.job(m.job).active_interval(m.start),
                      child);
        const Mask child_mask = mask & ~bit(m.job);
        Outcome o{Time::zero(), false};
        bool have = false;
        if (opts_->max_cache_entries > 0 && std::popcount(child_mask) >= 2) {
          const auto it = cache_.find(fill_key(child_mask, child, depth));
          if (it != cache_.end() && it->second.exact) {
            o = Outcome{Time(it->second.value), true};
            have = true;
          }
        }
        if (!have) {
          o = solve(child_mask, child, target + Time(1), depth + 1);
          if (aborted()) {
            reconstructing_ = false;
            return false;
          }
        }
        const Time total = o.value;
        if (o.exact && total == target) {
          starts[m.job] = m.start;
          comps = child;
          mask = child_mask;
          ++depth;
          advanced = true;
          break;
        }
      }
      FJS_CHECK(advanced, "exact: reconstruction found no child achieving "
                          "the proven optimal span");
    }
    reconstructing_ = false;
    FJS_CHECK(components_measure(comps) == target,
              "exact: reconstructed span mismatch");
    return true;
  }

  Time best_sched_span() const { return best_sched_span_; }
  const std::vector<Time>& best_starts() const { return best_starts_; }
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_entries() const { return cache_.size(); }

  /// Root branching, shared with the parallel driver: moves on the empty
  /// union, deterministic order.
  void root_moves(Mask mask, std::vector<Move>& out) {
    collect_moves(mask, Components{}, 0, out);
  }

 private:
  struct MandatoryRegion {
    Interval iv;
    JobId job;
  };

  /// Heaviest chain over a remaining-job mask, plus the window [lo, hi)
  /// every chain member's occupancy provably lies in (lo = the first
  /// member's arrival, hi = the last member's deadline + length; the chain
  /// condition d(I) + p(I) <= a(J) nests all earlier windows inside it).
  struct ChainInfo {
    Time weight = Time::zero();
    Time lo = Time::zero();
    Time hi = Time::zero();
  };

  bool aborted() const {
    return serial_ ? serial_aborted_
                   : shared_->aborted.load(std::memory_order_relaxed);
  }

  /// Accounts one search node; returns true when the budget just ran out.
  /// Serial mode uses a plain counter with semantics identical to the
  /// atomic path (increment, compare against the same budget).
  bool count_node() {
    if (serial_) {
      if (++serial_nodes_ > shared_->max_nodes) {
        serial_aborted_ = true;
        return true;
      }
      return false;
    }
    if (shared_->nodes.fetch_add(1, std::memory_order_relaxed) + 1 >
        shared_->max_nodes) {
      shared_->aborted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  Time incumbent() const {
    return Time(serial_ ? serial_incumbent_
                        : shared_->incumbent.load(std::memory_order_relaxed));
  }

  void offer_incumbent(Time span) {
    if (serial_) {
      serial_incumbent_ = std::min(serial_incumbent_, span.ticks());
    } else {
      shared_->offer_incumbent(span);
    }
  }

  /// Builds the cache key in the depth's scratch slot (no allocation once
  /// warm). The reference stays valid until the next fill at this depth;
  /// store() moves it out.
  StateKey& fill_key(Mask mask, const Components& comps, std::size_t depth) {
    StateKey& key = keys_[depth];
    key.mask = mask;
    key.comps.clear();
    key.comps.reserve(comps.size() * 2);
    for (const Interval& c : comps) {
      key.comps.push_back(c.lo.ticks());
      key.comps.push_back(c.hi.ticks());
    }
    return key;
  }

  void store(StateKey& key, Time value, bool exact) {
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (exact) {
        it->second = CacheEntry{value.ticks(), true};
      } else if (!it->second.exact) {
        it->second.value = std::max(it->second.value, value.ticks());
      }
      return;
    }
    if (cache_.size() >= opts_->max_cache_entries) {
      return;  // full: stop inserting, keep serving lookups
    }
    cache_.emplace(std::move(key), CacheEntry{value.ticks(), exact});
  }

  /// Admissible bound: measure(placed ∪ mandatory(remaining)), merged on a
  /// scratch buffer, maxed with the chain bound. The chain term is skipped
  /// when the mandatory merge alone already reaches `eff` — the caller
  /// prunes either way.
  Time lower_bound(Mask mask, const Components& comps, std::size_t depth,
                   Time eff) {
    (void)depth;
    // Fused merge + measure: two-pointer walk over the (lo-sorted)
    // mandatory regions still in `mask` and the placed components,
    // accumulating the union length run by run. Equal-lo ties may resolve
    // either way — the run merge extends to the same hi — so the value is
    // exactly sorted_union_measure of the old materialized scratch,
    // without building it. This runs once per search node and dominates
    // the per-node cost in miner profiles.
    Time lb = Time::zero();
    {
      Time run_lo = Time::zero();
      Time run_hi = Time::zero();
      bool open = false;
      std::size_t mi = 0;
      std::size_t ci = 0;
      while (true) {
        while (mi < mandatory_.size() &&
               (mask & bit(mandatory_[mi].job)) == 0) {
          ++mi;
        }
        const bool has_m = mi < mandatory_.size();
        const bool has_c = ci < comps.size();
        if (!has_m && !has_c) {
          break;
        }
        Interval iv;
        if (!has_c || (has_m && mandatory_[mi].iv.lo <= comps[ci].lo)) {
          iv = mandatory_[mi].iv;
          ++mi;
        } else {
          iv = comps[ci];
          ++ci;
        }
        if (!open) {
          run_lo = iv.lo;
          run_hi = iv.hi;
          open = true;
        } else if (iv.lo <= run_hi) {
          run_hi = std::max(run_hi, iv.hi);
        } else {
          lb += run_hi - run_lo;
          run_lo = iv.lo;
          run_hi = iv.hi;
        }
      }
      if (open) {
        lb += run_hi - run_lo;
      }
    }
    if (lb >= eff) {
      return lb;
    }
    // Chain + outside-window extension: the heaviest chain occupies weight
    // W inside its window [lo, hi), and placed components outside that
    // window are disjoint from it, so W + measure(placed \ [lo, hi)) is
    // also admissible — strictly at least the bare chain weight.
    const ChainInfo& ch = chain_info(mask);
    Time cb = ch.weight;
    if (cb > Time::zero()) {
      const Interval window(ch.lo, ch.hi);
      for (const Interval& c : comps) {
        cb += c.length() - c.intersect(window).length();
      }
    }
    return std::max(lb, cb);
  }

  /// dst = normalized disjoint components of comps ∪ mandatory(mask);
  /// returns its measure. Reuses the depth's lower-bound scratch (the
  /// caller is done with lower_bound at this depth).
  Time merged_components(Mask mask, const Components& comps,
                         std::size_t depth, Components& dst) {
    (void)depth;
    // Single fused pass: two-pointer interleave of the (lo-sorted)
    // mandatory regions still in `mask` with the placed components,
    // normalized into dst as it streams. Same output as materializing the
    // interleave first — this runs once per search node.
    dst.clear();
    Time total = Time::zero();
    std::size_t mi = 0;
    std::size_t ci = 0;
    while (true) {
      while (mi < mandatory_.size() &&
             (mask & bit(mandatory_[mi].job)) == 0) {
        ++mi;
      }
      const bool has_m = mi < mandatory_.size();
      const bool has_c = ci < comps.size();
      if (!has_m && !has_c) {
        break;
      }
      Interval iv;
      if (!has_m || (has_c && comps[ci].lo <= mandatory_[mi].iv.lo)) {
        iv = comps[ci];
        ++ci;
      } else {
        iv = mandatory_[mi].iv;
        ++mi;
      }
      if (!dst.empty() && iv.lo <= dst.back().hi) {
        if (iv.hi > dst.back().hi) {
          total += iv.hi - dst.back().hi;
          dst.back().hi = iv.hi;
        }
      } else {
        dst.push_back(iv);
        total += iv.length();
      }
    }
    return total;
  }

  /// Integral fast path: the fixed branch job of a node is the first job
  /// of the most-constrained order still remaining. Callers guarantee
  /// mask != 0 and grid_ != 0.
  JobId branch_job(Mask mask) const {
    for (const JobId candidate : fixed_order_) {
      if ((mask & bit(candidate)) != 0) {
        return candidate;
      }
    }
    return 0;  // unreachable: mask only holds jobs from fixed_order_
  }

  /// Chain bound over the remaining jobs: along any chain with
  /// d(I) + p(I) <= a(J) the placements are disjoint, so the span is at
  /// least the heaviest chain weight (single jobs included, so this
  /// subsumes the max-remaining-length bound). Independent of the placed
  /// union, hence memoized per remaining-job mask — masks repeat across
  /// permutations far more often than full states. The memo also records
  /// the winning chain's window for the outside-window extension above.
  ///
  /// Small instances (n <= kChainDirectBits, which covers every miner /
  /// fuzz workload) use a direct-indexed array with epoch stamps instead
  /// of a hash map: chain_info runs up to twice per node and the hash +
  /// node-allocation overhead dominated the actual DP in profiles. Stamps
  /// make re-init O(1) — no clearing between solver calls.
  const ChainInfo& chain_info(Mask mask) {
    if (chain_direct_active_) {
      ChainInfo& slot = chain_direct_[mask];
      if (chain_stamp_[mask] != chain_epoch_) {
        chain_stamp_[mask] = chain_epoch_;
        slot = compute_chain(mask);
      }
      return slot;
    }
    const auto it = chain_memo_.find(mask);
    if (it != chain_memo_.end()) {
      return it->second;
    }
    return chain_memo_.emplace(mask, compute_chain(mask)).first->second;
  }

  ChainInfo compute_chain(Mask mask) {
    // Pareto frontier as a flat scratch vector sorted by completion key
    // with strictly increasing weights: entry = (key, best chain weight
    // ending by key, that chain's lo). The DP touches <= n entries, so
    // linear scans and O(n) vector insert/erase beat a node-allocating map
    // by a wide margin (this function is hot in miner profiles).
    auto& pareto = pareto_scratch_;
    pareto.clear();
    ChainInfo best;
    const std::span<const Time> arrivals = view_.arrivals();
    const std::span<const Time> deadlines = view_.deadlines();
    const std::span<const Time> lengths = view_.lengths();
    for (const JobId id : by_arrival_) {
      if ((mask & bit(id)) == 0) {
        continue;
      }
      const Time arrival = arrivals[id];
      Time prefix = Time::zero();
      Time lo = arrival;
      std::size_t up = 0;  // first index with key > arrival
      while (up < pareto.size() && pareto[up].key <= arrival) {
        ++up;
      }
      if (up > 0) {
        prefix = pareto[up - 1].weight;
        if (prefix > Time::zero()) {
          lo = pareto[up - 1].lo;
        }
      }
      const Time f = prefix + lengths[id];
      const Time key = deadlines[id] + lengths[id];
      if (f > best.weight) {
        best = ChainInfo{f, lo, key};
      }
      while (up < pareto.size() && pareto[up].key <= key) {
        ++up;  // now: first index with key > `key`
      }
      if (up == 0 || pareto[up - 1].weight < f) {
        std::size_t pos;
        if (up > 0 && pareto[up - 1].key == key) {
          pos = up - 1;
          pareto[pos] = ParetoEntry{key, f, lo};
        } else {
          pos = up;
          pareto.insert(pareto.begin() + static_cast<std::ptrdiff_t>(pos),
                        ParetoEntry{key, f, lo});
        }
        std::size_t e = pos + 1;
        while (e < pareto.size() && pareto[e].weight <= f) {
          ++e;  // dominated by the new entry
        }
        pareto.erase(pareto.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                     pareto.begin() + static_cast<std::ptrdiff_t>(e));
      }
    }
    return best;
  }

  /// Dominance scan shared by solve()'s grid expansion and collect_moves:
  /// the first (in id order, twins skipped) remaining job with a
  /// zero-marginal start is committed as the single forced move. A
  /// zero-marginal start needs a component at least as long as the job, so
  /// with the longest component shorter than every remaining job (the
  /// common case early in the search) the scan is one comparison per job
  /// and no per-component walk at all.
  bool dominance_move(Mask mask, const Components& comps, Move* out) const {
    Time max_comp_len = Time::zero();
    for (const Interval& c : comps) {
      max_comp_len = std::max(max_comp_len, c.length());
    }
    if (max_comp_len == Time::zero()) {
      return false;
    }
    const std::span<const Time> arrivals = view_.arrivals();
    const std::span<const Time> deadlines = view_.deadlines();
    const std::span<const Time> lengths = view_.lengths();
    for (Mask rest = mask; rest != 0; rest &= rest - 1) {
      const JobId j = static_cast<JobId>(std::countr_zero(rest));
      if (lengths[j] > max_comp_len) {
        continue;  // no component can fully cover this job
      }
      if ((mask & lower_twins_[j]) != 0) {
        continue;  // an identical lower-id job stands in for this one
      }
      Time s;
      if (zero_marginal_start(comps, arrivals[j], deadlines[j], lengths[j],
                              &s)) {
        *out = Move{j, s, Time::zero()};
        return true;
      }
    }
    return false;
  }

  /// True iff the job has a start whose whole active interval is already
  /// covered; reports the leftmost such start.
  bool zero_marginal_start(const Components& comps, Time arrival,
                           Time deadline, Time length, Time* out) const {
    for (const Interval& c : comps) {
      if (c.lo > deadline) {
        break;
      }
      const Time lo = std::max(c.lo, arrival);
      const Time hi = std::min(c.hi - length, deadline);
      if (lo <= hi) {
        *out = lo;
        return true;
      }
    }
    return false;
  }

  /// Children of a node, cheapest marginal first. Applies dominance (a
  /// zero-marginal placement is committed as the single forced move) and
  /// twin symmetry breaking. Deterministic — reconstruction replays it.
  /// `grid_branch` lets solve() hand over its already-computed branch job
  /// (grid mode only); kInvalidJob means compute it here.
  void collect_moves(Mask mask, const Components& comps, std::size_t depth,
                     std::vector<Move>& moves,
                     JobId grid_branch = kInvalidJob) {
    moves.clear();
    Move dom;
    if (dominance_move(mask, comps, &dom)) {
      moves.push_back(dom);
      return;  // dominance: free placement, no branching
    }
    if (grid_ != 0) {
      // Integral fast path: one fixed job per depth, grid starts only. The
      // marginal of [s, s+p) is p - (C(s+p) - C(s)) with C the coverage
      // sweep — one pass over the components for the whole grid instead of
      // one uncovered() scan per start.
      const JobId j =
          grid_branch != kInvalidJob ? grid_branch : branch_job(mask);
      const Job job = view_.job(j);
      const std::int64_t a = job.arrival.ticks();
      const std::int64_t p = job.length.ticks();
      CoverageCursor lo_cursor(comps);
      CoverageCursor hi_cursor(comps);
      // The move order is (marginal, start) ascending. The grid has at
      // most kMaxGridStarts starts, so a start's grid index fits in 7
      // bits and (marginal << 7) | index sorts exactly like the pair —
      // plain integer keys sort several times faster than 24-byte Move
      // structs through a comparator. Marginals at or above 2^56 ticks
      // can't be packed; they fall back to the comparator sort below.
      auto& keys = move_key_scratch_;
      keys.clear();
      bool packable = true;
      std::uint64_t idx = 0;
      for (std::int64_t s = a; s <= job.deadline.ticks(); s += grid_) {
        const std::int64_t covered = hi_cursor.at(s + p) - lo_cursor.at(s);
        const std::int64_t marginal = p - covered;
        packable = packable && marginal < (std::int64_t{1} << 56);
        keys.push_back((static_cast<std::uint64_t>(marginal) << 7) | idx);
        ++idx;
      }
      if (packable) {
        if (keys.size() <= 32) {
          // Insertion sort: same order as std::sort (keys are unique),
          // cheaper while the grid move list is short (the common case).
          for (std::size_t i = 1; i < keys.size(); ++i) {
            const std::uint64_t v = keys[i];
            std::size_t k = i;
            while (k > 0 && v < keys[k - 1]) {
              keys[k] = keys[k - 1];
              --k;
            }
            keys[k] = v;
          }
        } else {
          std::sort(keys.begin(), keys.end());
        }
        for (const std::uint64_t key : keys) {
          const std::int64_t s =
              a + static_cast<std::int64_t>(key & 0x7F) * grid_;
          moves.push_back(
              Move{j, Time(s), Time(static_cast<std::int64_t>(key >> 7))});
        }
        return;
      }
      // Unpackable marginal (≥ 2^56 ticks): redo the sweep into Move
      // structs and sort with the explicit (marginal, start) comparator.
      CoverageCursor lo_retry(comps);
      CoverageCursor hi_retry(comps);
      for (std::int64_t s = a; s <= job.deadline.ticks(); s += grid_) {
        const std::int64_t covered = hi_retry.at(s + p) - lo_retry.at(s);
        moves.push_back(Move{j, Time(s), Time(p - covered)});
      }
      std::sort(moves.begin(), moves.end(),
                [](const Move& x, const Move& y) {
                  if (x.marginal != y.marginal) {
                    return x.marginal < y.marginal;
                  }
                  return x.start < y.start;
                });
      return;
    }
    auto& cands = cand_scratch_[depth];
    for (Mask rest = mask; rest != 0; rest &= rest - 1) {
      const JobId j = static_cast<JobId>(std::countr_zero(rest));
      if ((mask & lower_twins_[j]) != 0) {
        continue;
      }
      const Job job = view_.job(j);
      cands.clear();
      cands.push_back(job.arrival);
      cands.push_back(job.deadline);
      for (const Interval& c : comps) {
        for (const Time e : {c.lo, c.hi}) {
          for (const Time s : {e, e - job.length}) {
            if (s >= job.arrival && s <= job.deadline) {
              cands.push_back(s);
            }
          }
        }
      }
      // Insertion sort: the candidate list is 2 + 4·|comps| entries; at
      // that size std::sort's introsort machinery costs more than the
      // sort, and the sorted result is identical (Time is totally
      // ordered).
      for (std::size_t i = 1; i < cands.size(); ++i) {
        const Time v = cands[i];
        std::size_t k = i;
        while (k > 0 && v < cands[k - 1]) {
          cands[k] = cands[k - 1];
          --k;
        }
        cands[k] = v;
      }
      cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
      // Starts ascend after the sort, so one coverage sweep computes every
      // marginal — tick-identical to uncovered() per start.
      const std::int64_t p = job.length.ticks();
      CoverageCursor lo_cursor(comps);
      CoverageCursor hi_cursor(comps);
      for (const Time s : cands) {
        const std::int64_t covered =
            hi_cursor.at(s.ticks() + p) - lo_cursor.at(s.ticks());
        moves.push_back(Move{j, s, Time(p - covered)});
      }
    }
    sort_moves_general(moves);
  }

  /// Sorts general-mode moves by (marginal, job, start) — unique keys, so
  /// any correct sort yields the same deterministic order. The fast path
  /// packs (marginal, job, emission index) into one integer per move:
  /// emission order is (job asc, start asc), so the index ordering matches
  /// the start ordering within equal (marginal, job) and plain integer
  /// sorting reproduces the comparator order at a fraction of the cost.
  void sort_moves_general(std::vector<Move>& moves) {
    constexpr std::int64_t kMaxPackedMarginal = std::int64_t{1} << 44;
    constexpr std::size_t kMaxPackedMoves = std::size_t{1} << 14;
    bool packable = moves.size() <= kMaxPackedMoves;
    if (packable) {
      auto& keys = move_key_scratch_;
      keys.clear();
      for (std::size_t i = 0; i < moves.size(); ++i) {
        const Move& m = moves[i];
        if (m.marginal.ticks() >= kMaxPackedMarginal) {
          packable = false;
          break;
        }
        keys.push_back(
            (static_cast<std::uint64_t>(m.marginal.ticks()) << 20) |
            (static_cast<std::uint64_t>(m.job) << 14) |
            static_cast<std::uint64_t>(i));
      }
      if (packable) {
        if (keys.size() <= 32) {
          for (std::size_t i = 1; i < keys.size(); ++i) {
            const std::uint64_t v = keys[i];
            std::size_t k = i;
            while (k > 0 && v < keys[k - 1]) {
              keys[k] = keys[k - 1];
              --k;
            }
            keys[k] = v;
          }
        } else {
          std::sort(keys.begin(), keys.end());
        }
        auto& sorted = move_sort_scratch_;
        sorted.clear();
        for (const std::uint64_t key : keys) {
          sorted.push_back(moves[key & (kMaxPackedMoves - 1)]);
        }
        moves.swap(sorted);
        return;
      }
    }
    // Oversized list or unpackable marginal: comparator sort.
    std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
      if (a.marginal != b.marginal) {
        return a.marginal < b.marginal;
      }
      if (a.job != b.job) {
        return a.job < b.job;
      }
      return a.start < b.start;
    });
  }

  InstanceView view_;
  const ExactOptions* opts_ = nullptr;
  Shared* shared_ = nullptr;
  static constexpr std::int64_t kMaxGridStarts = 128;
  static constexpr std::size_t kCacheActivationNodes = 256;
  std::size_t local_nodes_ = 0;  // this worker's nodes, for cache activation
  // Serial-mode mirrors of Shared's atomics (see count_node).
  bool serial_ = false;
  bool serial_aborted_ = false;
  std::size_t serial_nodes_ = 0;
  std::int64_t serial_incumbent_ = 0;

  std::vector<Mask> lower_twins_;
  std::vector<JobId> by_arrival_;
  std::int64_t grid_ = 0;           // grid step in ticks; 0 = general mode
  std::vector<JobId> fixed_order_;  // fast path's per-depth job order
  std::vector<MandatoryRegion> mandatory_;  // sorted by left endpoint
  struct ParetoEntry {
    Time key;     // chain completion bound d(I) + p(I)
    Time weight;  // best chain weight ending by key
    Time lo;      // that chain's earliest arrival
  };
  std::vector<ParetoEntry> pareto_scratch_;  // chain_info DP frontier
  std::vector<std::uint64_t> move_key_scratch_;  // packed move-sort keys
  std::vector<Move> move_sort_scratch_;          // permute target for sort
  // chain_info memo: direct-indexed + epoch-stamped for small n, hash map
  // fallback above kChainDirectBits (2^n slots would no longer be cheap).
  static constexpr std::size_t kChainDirectBits = 12;
  bool chain_direct_active_ = false;
  std::uint32_t chain_epoch_ = 0;
  std::vector<ChainInfo> chain_direct_;
  std::vector<std::uint32_t> chain_stamp_;
  std::unordered_map<Mask, ChainInfo> chain_memo_;
  std::unordered_map<StateKey, CacheEntry, StateKeyHash> cache_;
  std::size_t cache_hits_ = 0;
  bool reconstructing_ = false;
  // Depth-indexed scratch (the recursion touches one slot per level).
  std::vector<std::vector<Interval>> lb_scratch_;
  std::vector<std::vector<Time>> cand_scratch_;
  std::vector<std::vector<Move>> move_scratch_;
  std::vector<Components> comp_scratch_;
  std::vector<Components> la_scratch_;
  std::vector<std::vector<std::int64_t>> la_unc_scratch_;  // lookahead sweep
  // Per-depth packed (marginal << 7 | start-index) keys for the fused grid
  // expansion; per-depth because recursive children reuse the sweep state.
  std::vector<std::vector<std::uint64_t>> grid_key_scratch_;
  std::vector<StateKey> keys_;
  // Current path's starts by job id; complete exactly at terminals.
  std::vector<Time> path_;
  Time best_sched_span_ = Time::max();
  std::vector<Time> best_starts_;
};

Schedule schedule_from_starts(const Instance& inst,
                              const std::vector<Time>& starts) {
  Schedule schedule(inst.size());
  for (JobId j = 0; j < inst.size(); ++j) {
    schedule.set_start(j, starts[j]);
  }
  schedule.validate(inst);
  return schedule;
}

ExactResult finish(const Instance* owner, Time span, Schedule schedule,
                   ExactStatus status, const Shared& shared,
                   std::size_t cache_hits, std::size_t cache_entries) {
  // span_only results carry an empty schedule; there is nothing to check.
  FJS_CHECK(schedule.size() == 0 ||
                (owner != nullptr && schedule.span(*owner) == span),
            "exact: span mismatch on reconstruction");
  ExactResult result;
  result.span = span;
  result.schedule = std::move(schedule);
  result.nodes_explored = shared.nodes.load(std::memory_order_relaxed);
  result.status = status;
  result.cache_hits = cache_hits;
  result.cache_entries = cache_entries;
  return result;
}

/// Shared search driver. `owner` is the owning Instance when the caller
/// has one (required for every non-span_only run: reconstruction and
/// schedule validation need it); the span_only view path passes nullptr.
ExactResult run_search(InstanceView view, const Instance* owner,
                       Schedule seed_schedule, Time seed_span,
                       const ExactOptions& options) {
  Shared shared(seed_span, options.max_nodes);
  const Mask full =
      view.size() == 64 ? ~Mask{0} : (Mask{1} << view.size()) - 1;

  // A floor at or above the seed span proves nothing the seed doesn't; it
  // only engages when it would genuinely clamp the root bound.
  const bool floor_active = options.decision_floor > Time::zero() &&
                            options.decision_floor < seed_span;
  const std::size_t workers = (options.pool != nullptr && !floor_active)
                                  ? options.pool->thread_count()
                                  : 1;
  if (workers <= 1 || view.size() < 8) {
    // One warm Search per thread: the miner certifies thousands of
    // candidates back-to-back on the same worker, and init() reuses every
    // scratch buffer / hash table's capacity.
    thread_local Search search;
    search.init(view, options, shared, /*serial=*/true);
    const Outcome o = search.solve(
        full, Components{},
        floor_active ? options.decision_floor : seed_span, 0);
    search.flush_serial_counters();
    if (shared.aborted.load(std::memory_order_relaxed)) {
      // Best-so-far: the seed unless the search surfaced a better terminal.
      if (search.best_sched_span() < seed_span) {
        return finish(owner, search.best_sched_span(),
                      options.span_only
                          ? Schedule(0)
                          : schedule_from_starts(*owner,
                                                 search.best_starts()),
                      ExactStatus::kBudgetExceeded, shared,
                      search.cache_hits(), search.cache_entries());
      }
      return finish(owner, seed_span, std::move(seed_schedule),
                    ExactStatus::kBudgetExceeded, shared, search.cache_hits(),
                    search.cache_entries());
    }
    if (!o.exact || o.value >= seed_span) {
      if (!o.exact && floor_active && o.value < seed_span) {
        // Fail-soft guarantee: a non-exact, non-aborted outcome is a valid
        // lower bound on OPT no smaller than the root bound — the floor.
        FJS_CHECK(o.value >= options.decision_floor,
                  "exact: floor search returned a bound below the floor");
        return finish(owner, seed_span, std::move(seed_schedule),
                      ExactStatus::kFloorProven, shared, search.cache_hits(),
                      search.cache_entries());
      }
      // The search proved nothing beats the seed: the seed is optimal.
      return finish(owner, seed_span, std::move(seed_schedule),
                    ExactStatus::kOptimal, shared, search.cache_hits(),
                    search.cache_entries());
    }
    if (options.span_only) {
      return finish(owner, o.value, Schedule(0), ExactStatus::kOptimal,
                    shared, search.cache_hits(), search.cache_entries());
    }
    if (search.best_sched_span() == o.value) {
      return finish(owner, o.value,
                    schedule_from_starts(*owner, search.best_starts()),
                    ExactStatus::kOptimal, shared, search.cache_hits(),
                    search.cache_entries());
    }
    std::vector<Time> starts(view.size());
    const bool reconstructed =
        search.reconstruct(full, Components{}, o.value, starts);
    search.flush_serial_counters();
    if (!reconstructed) {
      return finish(owner, seed_span, std::move(seed_schedule),
                    ExactStatus::kBudgetExceeded, shared, search.cache_hits(),
                    search.cache_entries());
    }
    return finish(owner, o.value, schedule_from_starts(*owner, starts),
                  ExactStatus::kOptimal, shared, search.cache_hits(),
                  search.cache_entries());
  }

  // Parallel root split: the root's (job, start) branches are chunked
  // contiguously across workers, each with its own cache, all sharing the
  // atomic incumbent. Reduction runs in branch order, so the optimal span
  // is independent of the thread count and of scheduling timing.
  std::vector<Move> roots;
  {
    Search probe;
    probe.init(view, options, shared, /*serial=*/false);
    probe.root_moves(full, roots);
  }
  const std::size_t chunks = std::min(workers, roots.size());
  std::vector<std::unique_ptr<Search>> searches(chunks);
  std::vector<Outcome> outcomes(roots.size(),
                                Outcome{Time::max(), false});
  parallel_for(*options.pool, chunks, [&](std::size_t c) {
    searches[c] = std::make_unique<Search>();
    searches[c]->init(view, options, shared, /*serial=*/false);
    const std::size_t begin = c * roots.size() / chunks;
    const std::size_t end = (c + 1) * roots.size() / chunks;
    Components child;
    for (std::size_t i = begin; i < end; ++i) {
      const Move& m = roots[i];
      with_inserted(Components{}, view.job(m.job).active_interval(m.start),
                    child);
      outcomes[i] = searches[c]->solve(
          full & ~bit(m.job), child,
          Time(shared.incumbent.load(std::memory_order_relaxed)), 1);
    }
  });

  std::size_t cache_hits = 0;
  std::size_t cache_entries = 0;
  for (const auto& s : searches) {
    if (s != nullptr) {
      cache_hits += s->cache_hits();
      cache_entries += s->cache_entries();
    }
  }

  Time best = seed_span;
  std::size_t best_idx = roots.size();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (outcomes[i].exact && outcomes[i].value < best) {
      best = outcomes[i].value;
      best_idx = i;
    }
  }
  const bool aborted = shared.aborted.load(std::memory_order_relaxed);
  if (best_idx == roots.size()) {
    // Seed optimal (nothing strictly better), or budget ran out first.
    return finish(owner, seed_span, std::move(seed_schedule),
                  aborted ? ExactStatus::kBudgetExceeded
                          : ExactStatus::kOptimal,
                  shared, cache_hits, cache_entries);
  }
  if (options.span_only) {
    return finish(owner, best, Schedule(0),
                  aborted ? ExactStatus::kBudgetExceeded
                          : ExactStatus::kOptimal,
                  shared, cache_hits, cache_entries);
  }
  // Reconstruct the winner's subtree inside its own cache.
  const std::size_t winner_chunk = [&] {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * roots.size() / chunks;
      const std::size_t end = (c + 1) * roots.size() / chunks;
      if (best_idx >= begin && best_idx < end) {
        return c;
      }
    }
    FJS_UNREACHABLE("exact: winning root branch outside every chunk");
  }();
  Search& winner = *searches[winner_chunk];
  std::vector<Time> starts(view.size());
  const Move& wm = roots[best_idx];
  starts[wm.job] = wm.start;
  Components child;
  with_inserted(Components{}, view.job(wm.job).active_interval(wm.start),
                child);
  if (!winner.reconstruct(full & ~bit(wm.job), std::move(child), best,
                          starts)) {
    return finish(owner, seed_span, std::move(seed_schedule),
                  ExactStatus::kBudgetExceeded, shared, cache_hits,
                  cache_entries);
  }
  return finish(owner, best, schedule_from_starts(*owner, starts),
                aborted ? ExactStatus::kBudgetExceeded : ExactStatus::kOptimal,
                shared, cache_hits, cache_entries);
}

}  // namespace

ExactResult exact_optimal(const Instance& instance, ExactOptions options) {
  if (instance.empty()) {
    return ExactResult{.span = Time::zero(), .schedule = Schedule(0)};
  }
  FJS_REQUIRE(instance.size() <= 64,
              "exact: more than 64 jobs — use the heuristic + lower bounds");

  // Seed incumbent: a valid schedule (or in span_only mode at least a known
  // feasible span) exists before the first node, so a budget-exceeded
  // result always carries a usable best-so-far, and the admissible bound
  // prunes from the start.
  Schedule seed_schedule(options.span_only ? 0 : instance.size());
  Time seed_span = Time::max();
  if (options.span_only) {
    if (options.seed_with_heuristic) {
      HeuristicOptions h;
      h.restarts = 0;
      h.max_passes = 8;
      const HeuristicResult hr = heuristic_optimal(instance, h);
      seed_span = hr.schedule.span(instance);
    }
    if (options.seed_span > Time::zero()) {
      seed_span = std::min(seed_span, options.seed_span);
    }
    FJS_REQUIRE(seed_span < Time::max(),
                "exact: span_only needs an incumbent seed — pass seed_span "
                "or enable seed_with_heuristic");
  } else {
    if (options.seed_with_heuristic) {
      HeuristicOptions h;
      h.restarts = 0;
      h.max_passes = 8;
      seed_schedule = heuristic_optimal(instance, h).schedule;
    } else {
      for (JobId j = 0; j < instance.size(); ++j) {
        seed_schedule.set_start(j, instance.job(j).arrival);
      }
    }
    seed_schedule.validate(instance);
    seed_span = seed_schedule.span(instance);
    if (options.seed_schedule != nullptr) {
      options.seed_schedule->validate(instance);
      const Time caller_span = options.seed_schedule->span(instance);
      if (caller_span < seed_span) {
        seed_schedule = *options.seed_schedule;
        seed_span = caller_span;
      }
    }
    // options.seed_span is ignored here: a bare span carries no witness
    // schedule, and every non-span_only result must return one whose span
    // matches the reported incumbent.
  }

  return run_search(instance.view(), &instance, std::move(seed_schedule),
                    seed_span, options);
}

ExactResult exact_optimal(InstanceView view, ExactOptions options) {
  // The owner-less entry is the miner's certification loop: span-only
  // decision runs over a mutation scratch table. Everything that needs an
  // owning Instance (heuristic seeding, witness schedules) is excluded by
  // construction.
  FJS_REQUIRE(options.span_only,
              "exact(view): requires span_only (no witness schedule without "
              "an owning Instance)");
  FJS_REQUIRE(!options.seed_with_heuristic && options.seed_schedule == nullptr,
              "exact(view): heuristic/schedule seeding needs an owning "
              "Instance — pass seed_span instead");
  FJS_REQUIRE(options.seed_span > Time::zero(),
              "exact(view): span_only needs a seed_span incumbent");
  if (view.empty()) {
    return ExactResult{.span = Time::zero(), .schedule = Schedule(0)};
  }
  FJS_REQUIRE(view.size() <= 64,
              "exact: more than 64 jobs — use the heuristic + lower bounds");
  return run_search(view, nullptr, Schedule(0), options.seed_span, options);
}

Time exact_optimal_span(const Instance& instance, ExactOptions options) {
  const ExactResult result = exact_optimal(instance, std::move(options));
  FJS_REQUIRE(result.optimal(),
              "exact: node budget exhausted — instance too large for the "
              "exact solver; use exact_optimal for the best-so-far result");
  return result.span;
}

}  // namespace fjs
