// Branch-and-bound exact solver. See exact.h for the critical-start
// completeness argument; the short version of the design:
//
//  * Nodes are (remaining-job set, union of placed intervals). Branching is
//    over (job, critical start) pairs — job choice included, so the
//    anchor-first placement orders the completeness proof needs are
//    reachable.
//  * A transposition cache keyed on the node state collapses the
//    permutation redundancy job-choice branching creates: the minimal
//    completion span is a function of the state alone, not of the path.
//    Entries are fail-soft: exact values short-circuit whole subtrees,
//    lower bounds prune re-visits under a tighter incumbent.
//  * The admissible bound merges the placed components with the remaining
//    jobs' mandatory regions through IntervalSet::sorted_union_measure on
//    depth-indexed scratch buffers — no IntervalSet materialization per
//    node.
//  * Budget exhaustion is a structured result (best-so-far incumbent), not
//    an assertion: miners and sweeps decide how to handle it.
#include "offline/exact.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/interval_set.h"
#include "offline/heuristic.h"
#include "support/assert.h"
#include "support/parallel.h"
#include "support/thread_pool.h"

namespace fjs {
namespace {

using Mask = std::uint64_t;

/// Sorted, disjoint, non-abutting components of the placed union — a plain
/// vector so child states are one bounded memmove, not an IntervalSet.
using Components = std::vector<Interval>;

constexpr Mask bit(JobId j) { return Mask{1} << j; }

/// Insertion sort for the tiny per-call id orderings: at mining sizes
/// std::sort's introsort machinery costs more than the sort itself. The
/// comparators used here are strict total orders (id tie-break), so the
/// result is exactly std::sort's.
template <typename Less>
void sort_ids(std::vector<JobId>& ids, Less less) {
  if (ids.size() > 32) {
    std::sort(ids.begin(), ids.end(), less);
    return;
  }
  for (std::size_t i = 1; i < ids.size(); ++i) {
    const JobId v = ids[i];
    std::size_t j = i;
    while (j > 0 && less(v, ids[j - 1])) {
      ids[j] = ids[j - 1];
      --j;
    }
    ids[j] = v;
  }
}

Time components_measure(const Components& comps) {
  Time total = Time::zero();
  for (const Interval& c : comps) {
    total += c.length();
  }
  return total;
}

/// dst = src with `iv` merged in (abutting intervals coalesce, matching
/// IntervalSet semantics so spans agree tick-for-tick).
void with_inserted(const Components& src, const Interval& iv,
                   Components& dst) {
  dst.clear();
  std::size_t i = 0;
  while (i < src.size() && src[i].hi < iv.lo) {
    dst.push_back(src[i++]);
  }
  Time lo = iv.lo;
  Time hi = iv.hi;
  while (i < src.size() && src[i].lo <= hi) {
    lo = std::min(lo, src[i].lo);
    hi = std::max(hi, src[i].hi);
    ++i;
  }
  dst.push_back(Interval(lo, hi));
  while (i < src.size()) {
    dst.push_back(src[i++]);
  }
}

/// Measure of `iv` not covered by the components — the marginal span cost
/// of placing an interval there.
Time uncovered(const Components& comps, const Interval& iv) {
  Time covered = Time::zero();
  for (const Interval& c : comps) {
    if (c.lo >= iv.hi) {
      break;
    }
    covered += c.intersect(iv).length();
  }
  return iv.length() - covered;
}

/// State shared between the per-worker searches of one exact_optimal call.
struct Shared {
  std::atomic<std::int64_t> incumbent;  // best known complete-span ticks
  std::atomic<std::size_t> nodes{0};
  std::atomic<bool> aborted{false};
  std::size_t max_nodes;

  Shared(Time seed_span, std::size_t budget)
      : incumbent(seed_span.ticks()), max_nodes(budget) {}

  void offer_incumbent(Time span) {
    std::int64_t cur = incumbent.load(std::memory_order_relaxed);
    while (span.ticks() < cur &&
           !incumbent.compare_exchange_weak(cur, span.ticks(),
                                            std::memory_order_relaxed)) {
    }
  }
};

struct StateKey {
  Mask mask = 0;
  std::vector<std::int64_t> comps;  // flattened (lo, hi) ticks

  bool operator==(const StateKey&) const = default;
};

struct StateKeyHash {
  std::size_t operator()(const StateKey& key) const {
    std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ key.mask;
    for (const std::int64_t v : key.comps) {
      h ^= static_cast<std::uint64_t>(v) + 0x9E3779B97F4A7C15ULL + (h << 6) +
           (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

struct CacheEntry {
  std::int64_t value;
  bool exact;  // true: value == optimal completion; false: value <= it
};

struct Move {
  JobId job;
  Time start;
  Time marginal;
};

struct Outcome {
  Time value;
  bool exact;
};

/// One worker's search: owns its transposition cache and scratch buffers;
/// shares the incumbent / node budget through Shared. Reusable: init()
/// rebinds to a new instance while keeping every scratch buffer's capacity,
/// so hot loops (the miner certifies thousands of candidates per mine) pay
/// no per-call allocation churn — the serial driver keeps one thread_local
/// Search warm.
class Search {
 public:
  Search() = default;

  void init(const Instance& inst, const ExactOptions& opts, Shared& shared,
            bool serial) {
    inst_ = &inst;
    opts_ = &opts;
    shared_ = &shared;
    serial_ = serial;
    serial_nodes_ = 0;
    serial_aborted_ = false;
    serial_incumbent_ = shared.incumbent.load(std::memory_order_relaxed);
    local_nodes_ = 0;
    cache_hits_ = 0;
    reconstructing_ = false;
    best_sched_span_ = Time::max();
    cache_.clear();
    mandatory_.clear();
    grid_ = 0;
    const std::size_t n = inst.size();
    chain_direct_active_ = n <= kChainDirectBits;
    if (chain_direct_active_) {
      const std::size_t slots = std::size_t{1} << n;
      if (chain_direct_.size() < slots) {
        chain_direct_.resize(slots);
        chain_stamp_.resize(slots, 0);
      }
      if (++chain_epoch_ == 0) {  // wrapped: stale stamps could collide
        std::fill(chain_stamp_.begin(), chain_stamp_.end(), 0);
        chain_epoch_ = 1;
      }
    } else {
      chain_memo_.clear();
    }
    lower_twins_.assign(n, 0);
    for (JobId j = 0; j < n; ++j) {
      const Job& job = inst.job(j);
      for (JobId k = 0; k < j; ++k) {
        const Job& other = inst.job(k);
        if (other.arrival == job.arrival && other.deadline == job.deadline &&
            other.length == job.length) {
          lower_twins_[j] |= bit(k);
        }
      }
      const Interval mand(job.deadline, job.arrival + job.length);
      if (!mand.empty()) {
        mandatory_.push_back(MandatoryRegion{mand, j});
      }
    }
    std::stable_sort(mandatory_.begin(), mandatory_.end(),
                     [](const MandatoryRegion& a, const MandatoryRegion& b) {
                       return a.iv.lo < b.iv.lo;
                     });
    // Same (arrival, id) order as Instance::ids_by_arrival(), filled in
    // place: init runs once per solver call and the per-call allocation
    // shows up in miner profiles.
    by_arrival_.resize(n);
    for (JobId j = 0; j < n; ++j) {
      by_arrival_[j] = j;
    }
    sort_ids(by_arrival_,
             [&inst](JobId a, JobId b) {
               if (inst.job(a).arrival != inst.job(b).arrival) {
                 return inst.job(a).arrival < inst.job(b).arrival;
               }
               return a < b;
             });

    fixed_order_.clear();
    if (opts.use_integral_fast_path) {
      std::int64_t g = 0;
      for (const Job& job : inst.jobs()) {
        g = std::gcd(g, job.arrival.ticks());
        g = std::gcd(g, job.deadline.ticks());
        g = std::gcd(g, job.length.ticks());
      }
      std::int64_t max_starts = 0;
      if (g > 0) {
        for (const Job& job : inst.jobs()) {
          max_starts =
              std::max(max_starts, (job.deadline - job.arrival).ticks() / g + 1);
        }
      }
      if (g > 0 && max_starts <= kMaxGridStarts) {
        grid_ = g;
        // Most-constrained-first, matching the reference DFS: small laxity
        // branches less, longer jobs among equals prune earlier.
        fixed_order_.resize(n);
        for (JobId j = 0; j < n; ++j) {
          fixed_order_[j] = j;
        }
        sort_ids(fixed_order_,
                 [&inst](JobId a, JobId b) {
                   const Job& ja = inst.job(a);
                   const Job& jb = inst.job(b);
                   if (ja.laxity() != jb.laxity()) {
                     return ja.laxity() < jb.laxity();
                   }
                   if (ja.length != jb.length) {
                     return ja.length > jb.length;
                   }
                   return a < b;
                 });
      }
    }
    if (lb_scratch_.size() < n + 2) {
      lb_scratch_.resize(n + 2);
      cand_scratch_.resize(n + 2);
      move_scratch_.resize(n + 2);
      comp_scratch_.resize(n + 2);
      la_scratch_.resize(n + 2);
      keys_.resize(n + 2);
    }
    path_.resize(n);
    best_starts_.resize(n);
  }

  /// Serial mode keeps the node/abort/incumbent counters in plain members
  /// (the atomic fetch_add is a measurable per-node tax); the driver folds
  /// them back into Shared when the search returns.
  void flush_serial_counters() {
    if (!serial_) {
      return;
    }
    shared_->nodes.store(serial_nodes_, std::memory_order_relaxed);
    if (serial_aborted_) {
      shared_->aborted.store(true, std::memory_order_relaxed);
    }
    shared_->offer_incumbent(Time(serial_incumbent_));
  }

  /// Fail-soft search: returns (value, exact) where exact means value is
  /// the optimal completion span of the state; otherwise value is a valid
  /// lower bound on it (>= bound unless the run aborted).
  Outcome solve(Mask mask, const Components& comps, Time bound,
                std::size_t depth) {
    if (aborted()) {
      return Outcome{bound, false};
    }
    if (count_node()) {
      return Outcome{bound, false};
    }
    if (mask == 0) {
      const Time span = components_measure(comps);
      if (span < best_sched_span_) {
        best_sched_span_ = span;
        if (!opts_->span_only) {
          best_starts_ = path_;
        }
      }
      offer_incumbent(span);
      return Outcome{span, true};
    }
    Time eff = bound;
    if (!reconstructing_) {
      eff = std::min(eff, incumbent());
    }
    // The cache only pays for itself once a search is big enough to revisit
    // states; below the activation threshold the per-node key/hash/insert
    // cost outweighs any possible hit, so easy instances skip it entirely.
    const bool cacheable = opts_->max_cache_entries > 0 &&
                           std::popcount(mask) >= 2 &&
                           ++local_nodes_ > kCacheActivationNodes;
    if (cacheable) {
      StateKey& key = fill_key(mask, comps, depth);
      const auto it = cache_.find(key);
      if (it != cache_.end()) {
        if (it->second.exact) {
          ++cache_hits_;
          const Time value(it->second.value);
          offer_incumbent(value);
          return Outcome{value, true};
        }
        if (Time(it->second.value) >= eff) {
          return Outcome{Time(it->second.value), false};
        }
      }
    }
    // Admissible bound. In the integral fast path the branch job j* at this
    // node is fixed, so the union bound for `mask` decomposes as
    // measure(base ∪ mandatory(j*)) with base = comps ∪ mandatory(mask\j*)
    // — exactly the base every child's one-ply lookahead bound needs below.
    // Build it once, normalized, and reuse it for both (one merge per node
    // instead of two); the value is identical to lower_bound's union term.
    Time lb;
    auto& la_comps = la_scratch_[depth];
    bool la_ready = false;
    Time la_base = Time::zero();
    if (grid_ != 0) {
      const JobId bj = branch_job(mask);
      la_base = merged_components(mask & ~bit(bj), comps, depth, la_comps);
      la_ready = true;
      const Job& bjob = inst_->job(bj);
      const Interval mand(bjob.deadline, bjob.arrival + bjob.length);
      lb = la_base;
      if (!mand.empty()) {
        lb = lb + uncovered(la_comps, mand);
      }
      if (lb < eff) {
        // Chain + outside-window extension, as in lower_bound.
        const ChainInfo& ch = chain_info(mask);
        Time cb = ch.weight;
        if (cb > Time::zero()) {
          const Interval window(ch.lo, ch.hi);
          for (const Interval& c : comps) {
            cb += c.length() - c.intersect(window).length();
          }
        }
        lb = std::max(lb, cb);
      }
    } else {
      lb = lower_bound(mask, comps, depth, eff);
    }
    if (lb >= eff) {
      if (cacheable) {
        store(fill_key(mask, comps, depth), lb, false);
      }
      return Outcome{lb, false};
    }
    auto& moves = move_scratch_[depth];
    collect_moves(mask, comps, depth, moves);
    // One-ply lookahead pruning (integral fast path): every move at this
    // node places the same job j*, so each child's mandatory-union bound is
    // measure(base ∪ iv) = la_base + uncovered(la_comps, iv). A child whose
    // quick bound (maxed with the move-invariant child chain weight) already
    // reaches the pruning bar is cut without recursing — the recursion would
    // recompute the identical merge only to fail its own bound check. Pruned
    // children still feed the fail-soft return value through pruned_min.
    // (With a dominance move, moves.size() == 1 and this never fires, so
    // la_comps always matches moves.front().job when used.)
    const bool lookahead = la_ready && moves.size() > 1;
    Time la_chain = Time::zero();
    if (lookahead) {
      la_chain = chain_info(mask & ~bit(moves.front().job)).weight;
    }
    Time best = Time::max();
    bool best_exact = false;
    Time pruned_min = Time::max();
    auto& child = comp_scratch_[depth];
    for (const Move& m : moves) {
      const Time child_bound = std::min(eff, best);
      const Interval iv = inst_->job(m.job).active_interval(m.start);
      if (lookahead) {
        const Time quick =
            std::max(la_base + uncovered(la_comps, iv), la_chain);
        if (quick >= child_bound) {
          pruned_min = std::min(pruned_min, quick);
          continue;
        }
      }
      with_inserted(comps, iv, child);
      path_[m.job] = m.start;
      const Outcome o =
          solve(mask & ~bit(m.job), child, child_bound, depth + 1);
      if (o.value < best || (o.value == best && o.exact && !best_exact)) {
        best = o.value;
        best_exact = o.exact;
      }
      if (aborted()) {
        return Outcome{best, false};
      }
      if (best_exact && best <= lb) {
        break;  // optimality-gap cut: no child can beat the admissible bound
      }
    }
    if (pruned_min < best) {
      // Every recursed child came back above some pruned child's quick
      // bound; the tightest knowledge about this node is that bound, and it
      // is not exact (the pruned subtree was never explored).
      best = pruned_min;
      best_exact = false;
    }
    if (cacheable) {
      store(fill_key(mask, comps, depth), best, best_exact);
    }
    return Outcome{best, best_exact};
  }

  /// Walks the cache (re-solving where entries are missing or inexact) to
  /// extract starts achieving `target` from `state`. Returns false only if
  /// the node budget ran out mid-walk.
  bool reconstruct(Mask mask, Components comps, Time target,
                   std::vector<Time>& starts) {
    reconstructing_ = true;
    std::vector<Move> moves;
    Components child;
    std::size_t depth = inst_->size() - static_cast<std::size_t>(
                                            std::popcount(mask));
    while (mask != 0) {
      collect_moves(mask, comps, depth, moves);
      bool advanced = false;
      for (const Move& m : moves) {
        with_inserted(comps, inst_->job(m.job).active_interval(m.start),
                      child);
        const Mask child_mask = mask & ~bit(m.job);
        Outcome o{Time::zero(), false};
        bool have = false;
        if (opts_->max_cache_entries > 0 && std::popcount(child_mask) >= 2) {
          const auto it = cache_.find(fill_key(child_mask, child, depth));
          if (it != cache_.end() && it->second.exact) {
            o = Outcome{Time(it->second.value), true};
            have = true;
          }
        }
        if (!have) {
          o = solve(child_mask, child, target + Time(1), depth + 1);
          if (aborted()) {
            reconstructing_ = false;
            return false;
          }
        }
        const Time total = o.value;
        if (o.exact && total == target) {
          starts[m.job] = m.start;
          comps = child;
          mask = child_mask;
          ++depth;
          advanced = true;
          break;
        }
      }
      FJS_CHECK(advanced, "exact: reconstruction found no child achieving "
                          "the proven optimal span");
    }
    reconstructing_ = false;
    FJS_CHECK(components_measure(comps) == target,
              "exact: reconstructed span mismatch");
    return true;
  }

  Time best_sched_span() const { return best_sched_span_; }
  const std::vector<Time>& best_starts() const { return best_starts_; }
  std::size_t cache_hits() const { return cache_hits_; }
  std::size_t cache_entries() const { return cache_.size(); }

  /// Root branching, shared with the parallel driver: moves on the empty
  /// union, deterministic order.
  void root_moves(Mask mask, std::vector<Move>& out) {
    collect_moves(mask, Components{}, 0, out);
  }

 private:
  struct MandatoryRegion {
    Interval iv;
    JobId job;
  };

  /// Heaviest chain over a remaining-job mask, plus the window [lo, hi)
  /// every chain member's occupancy provably lies in (lo = the first
  /// member's arrival, hi = the last member's deadline + length; the chain
  /// condition d(I) + p(I) <= a(J) nests all earlier windows inside it).
  struct ChainInfo {
    Time weight = Time::zero();
    Time lo = Time::zero();
    Time hi = Time::zero();
  };

  bool aborted() const {
    return serial_ ? serial_aborted_
                   : shared_->aborted.load(std::memory_order_relaxed);
  }

  /// Accounts one search node; returns true when the budget just ran out.
  /// Serial mode uses a plain counter with semantics identical to the
  /// atomic path (increment, compare against the same budget).
  bool count_node() {
    if (serial_) {
      if (++serial_nodes_ > shared_->max_nodes) {
        serial_aborted_ = true;
        return true;
      }
      return false;
    }
    if (shared_->nodes.fetch_add(1, std::memory_order_relaxed) + 1 >
        shared_->max_nodes) {
      shared_->aborted.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  Time incumbent() const {
    return Time(serial_ ? serial_incumbent_
                        : shared_->incumbent.load(std::memory_order_relaxed));
  }

  void offer_incumbent(Time span) {
    if (serial_) {
      serial_incumbent_ = std::min(serial_incumbent_, span.ticks());
    } else {
      shared_->offer_incumbent(span);
    }
  }

  /// Builds the cache key in the depth's scratch slot (no allocation once
  /// warm). The reference stays valid until the next fill at this depth;
  /// store() moves it out.
  StateKey& fill_key(Mask mask, const Components& comps, std::size_t depth) {
    StateKey& key = keys_[depth];
    key.mask = mask;
    key.comps.clear();
    key.comps.reserve(comps.size() * 2);
    for (const Interval& c : comps) {
      key.comps.push_back(c.lo.ticks());
      key.comps.push_back(c.hi.ticks());
    }
    return key;
  }

  void store(StateKey& key, Time value, bool exact) {
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      if (exact) {
        it->second = CacheEntry{value.ticks(), true};
      } else if (!it->second.exact) {
        it->second.value = std::max(it->second.value, value.ticks());
      }
      return;
    }
    if (cache_.size() >= opts_->max_cache_entries) {
      return;  // full: stop inserting, keep serving lookups
    }
    cache_.emplace(std::move(key), CacheEntry{value.ticks(), exact});
  }

  /// Admissible bound: measure(placed ∪ mandatory(remaining)), merged on a
  /// scratch buffer, maxed with the chain bound. The chain term is skipped
  /// when the mandatory merge alone already reaches `eff` — the caller
  /// prunes either way.
  Time lower_bound(Mask mask, const Components& comps, std::size_t depth,
                   Time eff) {
    auto& scratch = lb_scratch_[depth];
    scratch.clear();
    std::size_t ci = 0;
    for (const MandatoryRegion& m : mandatory_) {
      if ((mask & bit(m.job)) == 0) {
        continue;
      }
      while (ci < comps.size() && comps[ci].lo <= m.iv.lo) {
        scratch.push_back(comps[ci++]);
      }
      scratch.push_back(m.iv);
    }
    while (ci < comps.size()) {
      scratch.push_back(comps[ci++]);
    }
    const Time lb = IntervalSet::sorted_union_measure(scratch);
    if (lb >= eff) {
      return lb;
    }
    // Chain + outside-window extension: the heaviest chain occupies weight
    // W inside its window [lo, hi), and placed components outside that
    // window are disjoint from it, so W + measure(placed \ [lo, hi)) is
    // also admissible — strictly at least the bare chain weight.
    const ChainInfo& ch = chain_info(mask);
    Time cb = ch.weight;
    if (cb > Time::zero()) {
      const Interval window(ch.lo, ch.hi);
      for (const Interval& c : comps) {
        cb += c.length() - c.intersect(window).length();
      }
    }
    return std::max(lb, cb);
  }

  /// dst = normalized disjoint components of comps ∪ mandatory(mask);
  /// returns its measure. Reuses the depth's lower-bound scratch (the
  /// caller is done with lower_bound at this depth).
  Time merged_components(Mask mask, const Components& comps,
                         std::size_t depth, Components& dst) {
    auto& scratch = lb_scratch_[depth];
    scratch.clear();
    std::size_t ci = 0;
    for (const MandatoryRegion& m : mandatory_) {
      if ((mask & bit(m.job)) == 0) {
        continue;
      }
      while (ci < comps.size() && comps[ci].lo <= m.iv.lo) {
        scratch.push_back(comps[ci++]);
      }
      scratch.push_back(m.iv);
    }
    while (ci < comps.size()) {
      scratch.push_back(comps[ci++]);
    }
    dst.clear();
    Time total = Time::zero();
    for (const Interval& iv : scratch) {
      if (!dst.empty() && iv.lo <= dst.back().hi) {
        if (iv.hi > dst.back().hi) {
          total += iv.hi - dst.back().hi;
          dst.back().hi = iv.hi;
        }
      } else {
        dst.push_back(iv);
        total += iv.length();
      }
    }
    return total;
  }

  /// Integral fast path: the fixed branch job of a node is the first job
  /// of the most-constrained order still remaining. Callers guarantee
  /// mask != 0 and grid_ != 0.
  JobId branch_job(Mask mask) const {
    for (const JobId candidate : fixed_order_) {
      if ((mask & bit(candidate)) != 0) {
        return candidate;
      }
    }
    return 0;  // unreachable: mask only holds jobs from fixed_order_
  }

  /// Chain bound over the remaining jobs: along any chain with
  /// d(I) + p(I) <= a(J) the placements are disjoint, so the span is at
  /// least the heaviest chain weight (single jobs included, so this
  /// subsumes the max-remaining-length bound). Independent of the placed
  /// union, hence memoized per remaining-job mask — masks repeat across
  /// permutations far more often than full states. The memo also records
  /// the winning chain's window for the outside-window extension above.
  ///
  /// Small instances (n <= kChainDirectBits, which covers every miner /
  /// fuzz workload) use a direct-indexed array with epoch stamps instead
  /// of a hash map: chain_info runs up to twice per node and the hash +
  /// node-allocation overhead dominated the actual DP in profiles. Stamps
  /// make re-init O(1) — no clearing between solver calls.
  const ChainInfo& chain_info(Mask mask) {
    if (chain_direct_active_) {
      ChainInfo& slot = chain_direct_[mask];
      if (chain_stamp_[mask] != chain_epoch_) {
        chain_stamp_[mask] = chain_epoch_;
        slot = compute_chain(mask);
      }
      return slot;
    }
    const auto it = chain_memo_.find(mask);
    if (it != chain_memo_.end()) {
      return it->second;
    }
    return chain_memo_.emplace(mask, compute_chain(mask)).first->second;
  }

  ChainInfo compute_chain(Mask mask) {
    // Pareto frontier as a flat scratch vector sorted by completion key
    // with strictly increasing weights: entry = (key, best chain weight
    // ending by key, that chain's lo). The DP touches <= n entries, so
    // linear scans and O(n) vector insert/erase beat a node-allocating map
    // by a wide margin (this function is hot in miner profiles).
    auto& pareto = pareto_scratch_;
    pareto.clear();
    ChainInfo best;
    for (const JobId id : by_arrival_) {
      if ((mask & bit(id)) == 0) {
        continue;
      }
      const Job& j = inst_->job(id);
      Time prefix = Time::zero();
      Time lo = j.arrival;
      std::size_t up = 0;  // first index with key > j.arrival
      while (up < pareto.size() && pareto[up].key <= j.arrival) {
        ++up;
      }
      if (up > 0) {
        prefix = pareto[up - 1].weight;
        if (prefix > Time::zero()) {
          lo = pareto[up - 1].lo;
        }
      }
      const Time f = prefix + j.length;
      const Time key = j.deadline + j.length;
      if (f > best.weight) {
        best = ChainInfo{f, lo, key};
      }
      while (up < pareto.size() && pareto[up].key <= key) {
        ++up;  // now: first index with key > `key`
      }
      if (up == 0 || pareto[up - 1].weight < f) {
        std::size_t pos;
        if (up > 0 && pareto[up - 1].key == key) {
          pos = up - 1;
          pareto[pos] = ParetoEntry{key, f, lo};
        } else {
          pos = up;
          pareto.insert(pareto.begin() + static_cast<std::ptrdiff_t>(pos),
                        ParetoEntry{key, f, lo});
        }
        std::size_t e = pos + 1;
        while (e < pareto.size() && pareto[e].weight <= f) {
          ++e;  // dominated by the new entry
        }
        pareto.erase(pareto.begin() + static_cast<std::ptrdiff_t>(pos) + 1,
                     pareto.begin() + static_cast<std::ptrdiff_t>(e));
      }
    }
    return best;
  }

  /// True iff the job has a start whose whole active interval is already
  /// covered; reports the leftmost such start.
  bool zero_marginal_start(const Components& comps, const Job& job,
                           Time* out) const {
    for (const Interval& c : comps) {
      if (c.lo > job.deadline) {
        break;
      }
      const Time lo = std::max(c.lo, job.arrival);
      const Time hi = std::min(c.hi - job.length, job.deadline);
      if (lo <= hi) {
        *out = lo;
        return true;
      }
    }
    return false;
  }

  /// Children of a node, cheapest marginal first. Applies dominance (a
  /// zero-marginal placement is committed as the single forced move) and
  /// twin symmetry breaking. Deterministic — reconstruction replays it.
  void collect_moves(Mask mask, const Components& comps, std::size_t depth,
                     std::vector<Move>& moves) {
    moves.clear();
    for (Mask rest = mask; rest != 0; rest &= rest - 1) {
      const JobId j = static_cast<JobId>(std::countr_zero(rest));
      if ((mask & lower_twins_[j]) != 0) {
        continue;  // an identical lower-id job stands in for this one
      }
      Time s;
      if (zero_marginal_start(comps, inst_->job(j), &s)) {
        moves.push_back(Move{j, s, Time::zero()});
        return;  // dominance: free placement, no branching
      }
    }
    if (grid_ != 0) {
      // Integral fast path: one fixed job per depth, grid starts only.
      const JobId j = branch_job(mask);
      const Job& job = inst_->job(j);
      for (std::int64_t s = job.arrival.ticks(); s <= job.deadline.ticks();
           s += grid_) {
        const Time start(s);
        moves.push_back(
            Move{j, start, uncovered(comps, job.active_interval(start))});
      }
      // Insertion sort: the grid move list is short (≤ window/g + 1) and
      // std::sort's introsort machinery shows up in profiles at this size.
      // (marginal, start) keys are unique, so the order matches std::sort.
      for (std::size_t i = 1; i < moves.size(); ++i) {
        const Move m = moves[i];
        std::size_t k = i;
        while (k > 0 && (m.marginal < moves[k - 1].marginal ||
                         (m.marginal == moves[k - 1].marginal &&
                          m.start < moves[k - 1].start))) {
          moves[k] = moves[k - 1];
          --k;
        }
        moves[k] = m;
      }
      return;
    }
    auto& cands = cand_scratch_[depth];
    for (Mask rest = mask; rest != 0; rest &= rest - 1) {
      const JobId j = static_cast<JobId>(std::countr_zero(rest));
      if ((mask & lower_twins_[j]) != 0) {
        continue;
      }
      const Job& job = inst_->job(j);
      cands.clear();
      cands.push_back(job.arrival);
      cands.push_back(job.deadline);
      for (const Interval& c : comps) {
        for (const Time e : {c.lo, c.hi}) {
          for (const Time s : {e, e - job.length}) {
            if (s >= job.arrival && s <= job.deadline) {
              cands.push_back(s);
            }
          }
        }
      }
      std::sort(cands.begin(), cands.end());
      cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
      for (const Time s : cands) {
        moves.push_back(Move{j, s, uncovered(comps, job.active_interval(s))});
      }
    }
    // (marginal, job, start) is unique per move, so plain sort is
    // deterministic.
    std::sort(moves.begin(), moves.end(), [](const Move& a, const Move& b) {
      if (a.marginal != b.marginal) {
        return a.marginal < b.marginal;
      }
      if (a.job != b.job) {
        return a.job < b.job;
      }
      return a.start < b.start;
    });
  }

  const Instance* inst_ = nullptr;
  const ExactOptions* opts_ = nullptr;
  Shared* shared_ = nullptr;
  static constexpr std::int64_t kMaxGridStarts = 128;
  static constexpr std::size_t kCacheActivationNodes = 256;
  std::size_t local_nodes_ = 0;  // this worker's nodes, for cache activation
  // Serial-mode mirrors of Shared's atomics (see count_node).
  bool serial_ = false;
  bool serial_aborted_ = false;
  std::size_t serial_nodes_ = 0;
  std::int64_t serial_incumbent_ = 0;

  std::vector<Mask> lower_twins_;
  std::vector<JobId> by_arrival_;
  std::int64_t grid_ = 0;           // grid step in ticks; 0 = general mode
  std::vector<JobId> fixed_order_;  // fast path's per-depth job order
  std::vector<MandatoryRegion> mandatory_;  // sorted by left endpoint
  struct ParetoEntry {
    Time key;     // chain completion bound d(I) + p(I)
    Time weight;  // best chain weight ending by key
    Time lo;      // that chain's earliest arrival
  };
  std::vector<ParetoEntry> pareto_scratch_;  // chain_info DP frontier
  // chain_info memo: direct-indexed + epoch-stamped for small n, hash map
  // fallback above kChainDirectBits (2^n slots would no longer be cheap).
  static constexpr std::size_t kChainDirectBits = 12;
  bool chain_direct_active_ = false;
  std::uint32_t chain_epoch_ = 0;
  std::vector<ChainInfo> chain_direct_;
  std::vector<std::uint32_t> chain_stamp_;
  std::unordered_map<Mask, ChainInfo> chain_memo_;
  std::unordered_map<StateKey, CacheEntry, StateKeyHash> cache_;
  std::size_t cache_hits_ = 0;
  bool reconstructing_ = false;
  // Depth-indexed scratch (the recursion touches one slot per level).
  std::vector<std::vector<Interval>> lb_scratch_;
  std::vector<std::vector<Time>> cand_scratch_;
  std::vector<std::vector<Move>> move_scratch_;
  std::vector<Components> comp_scratch_;
  std::vector<Components> la_scratch_;
  std::vector<StateKey> keys_;
  // Current path's starts by job id; complete exactly at terminals.
  std::vector<Time> path_;
  Time best_sched_span_ = Time::max();
  std::vector<Time> best_starts_;
};

Schedule schedule_from_starts(const Instance& inst,
                              const std::vector<Time>& starts) {
  Schedule schedule(inst.size());
  for (JobId j = 0; j < inst.size(); ++j) {
    schedule.set_start(j, starts[j]);
  }
  schedule.validate(inst);
  return schedule;
}

ExactResult finish(const Instance& inst, Time span, Schedule schedule,
                   ExactStatus status, const Shared& shared,
                   std::size_t cache_hits, std::size_t cache_entries) {
  // span_only results carry an empty schedule; there is nothing to check.
  FJS_CHECK(schedule.size() == 0 || schedule.span(inst) == span,
            "exact: span mismatch on reconstruction");
  ExactResult result;
  result.span = span;
  result.schedule = std::move(schedule);
  result.nodes_explored = shared.nodes.load(std::memory_order_relaxed);
  result.status = status;
  result.cache_hits = cache_hits;
  result.cache_entries = cache_entries;
  return result;
}

}  // namespace

ExactResult exact_optimal(const Instance& instance, ExactOptions options) {
  if (instance.empty()) {
    return ExactResult{.span = Time::zero(), .schedule = Schedule(0)};
  }
  FJS_REQUIRE(instance.size() <= 64,
              "exact: more than 64 jobs — use the heuristic + lower bounds");

  // Seed incumbent: a valid schedule (or in span_only mode at least a known
  // feasible span) exists before the first node, so a budget-exceeded
  // result always carries a usable best-so-far, and the admissible bound
  // prunes from the start.
  Schedule seed_schedule(options.span_only ? 0 : instance.size());
  Time seed_span = Time::max();
  if (options.span_only) {
    if (options.seed_with_heuristic) {
      HeuristicOptions h;
      h.restarts = 0;
      h.max_passes = 8;
      const HeuristicResult hr = heuristic_optimal(instance, h);
      seed_span = hr.schedule.span(instance);
    }
    if (options.seed_span > Time::zero()) {
      seed_span = std::min(seed_span, options.seed_span);
    }
    FJS_REQUIRE(seed_span < Time::max(),
                "exact: span_only needs an incumbent seed — pass seed_span "
                "or enable seed_with_heuristic");
  } else {
    if (options.seed_with_heuristic) {
      HeuristicOptions h;
      h.restarts = 0;
      h.max_passes = 8;
      seed_schedule = heuristic_optimal(instance, h).schedule;
    } else {
      for (JobId j = 0; j < instance.size(); ++j) {
        seed_schedule.set_start(j, instance.job(j).arrival);
      }
    }
    seed_schedule.validate(instance);
    seed_span = seed_schedule.span(instance);
    if (options.seed_schedule != nullptr) {
      options.seed_schedule->validate(instance);
      const Time caller_span = options.seed_schedule->span(instance);
      if (caller_span < seed_span) {
        seed_schedule = *options.seed_schedule;
        seed_span = caller_span;
      }
    }
    // options.seed_span is ignored here: a bare span carries no witness
    // schedule, and every non-span_only result must return one whose span
    // matches the reported incumbent.
  }

  Shared shared(seed_span, options.max_nodes);
  const Mask full = instance.size() == 64
                        ? ~Mask{0}
                        : (Mask{1} << instance.size()) - 1;

  // A floor at or above the seed span proves nothing the seed doesn't; it
  // only engages when it would genuinely clamp the root bound.
  const bool floor_active = options.decision_floor > Time::zero() &&
                            options.decision_floor < seed_span;
  const std::size_t workers = (options.pool != nullptr && !floor_active)
                                  ? options.pool->thread_count()
                                  : 1;
  if (workers <= 1 || instance.size() < 8) {
    // One warm Search per thread: the miner certifies thousands of
    // candidates back-to-back on the same worker, and init() reuses every
    // scratch buffer / hash table's capacity.
    thread_local Search search;
    search.init(instance, options, shared, /*serial=*/true);
    const Outcome o = search.solve(
        full, Components{},
        floor_active ? options.decision_floor : seed_span, 0);
    search.flush_serial_counters();
    if (shared.aborted.load(std::memory_order_relaxed)) {
      // Best-so-far: the seed unless the search surfaced a better terminal.
      if (search.best_sched_span() < seed_span) {
        return finish(instance, search.best_sched_span(),
                      options.span_only
                          ? Schedule(0)
                          : schedule_from_starts(instance,
                                                 search.best_starts()),
                      ExactStatus::kBudgetExceeded, shared,
                      search.cache_hits(), search.cache_entries());
      }
      return finish(instance, seed_span, std::move(seed_schedule),
                    ExactStatus::kBudgetExceeded, shared, search.cache_hits(),
                    search.cache_entries());
    }
    if (!o.exact || o.value >= seed_span) {
      if (!o.exact && floor_active && o.value < seed_span) {
        // Fail-soft guarantee: a non-exact, non-aborted outcome is a valid
        // lower bound on OPT no smaller than the root bound — the floor.
        FJS_CHECK(o.value >= options.decision_floor,
                  "exact: floor search returned a bound below the floor");
        return finish(instance, seed_span, std::move(seed_schedule),
                      ExactStatus::kFloorProven, shared, search.cache_hits(),
                      search.cache_entries());
      }
      // The search proved nothing beats the seed: the seed is optimal.
      return finish(instance, seed_span, std::move(seed_schedule),
                    ExactStatus::kOptimal, shared, search.cache_hits(),
                    search.cache_entries());
    }
    if (options.span_only) {
      return finish(instance, o.value, Schedule(0), ExactStatus::kOptimal,
                    shared, search.cache_hits(), search.cache_entries());
    }
    if (search.best_sched_span() == o.value) {
      return finish(instance, o.value,
                    schedule_from_starts(instance, search.best_starts()),
                    ExactStatus::kOptimal, shared, search.cache_hits(),
                    search.cache_entries());
    }
    std::vector<Time> starts(instance.size());
    const bool reconstructed =
        search.reconstruct(full, Components{}, o.value, starts);
    search.flush_serial_counters();
    if (!reconstructed) {
      return finish(instance, seed_span, std::move(seed_schedule),
                    ExactStatus::kBudgetExceeded, shared, search.cache_hits(),
                    search.cache_entries());
    }
    return finish(instance, o.value, schedule_from_starts(instance, starts),
                  ExactStatus::kOptimal, shared, search.cache_hits(),
                  search.cache_entries());
  }

  // Parallel root split: the root's (job, start) branches are chunked
  // contiguously across workers, each with its own cache, all sharing the
  // atomic incumbent. Reduction runs in branch order, so the optimal span
  // is independent of the thread count and of scheduling timing.
  std::vector<Move> roots;
  {
    Search probe;
    probe.init(instance, options, shared, /*serial=*/false);
    probe.root_moves(full, roots);
  }
  const std::size_t chunks = std::min(workers, roots.size());
  std::vector<std::unique_ptr<Search>> searches(chunks);
  std::vector<Outcome> outcomes(roots.size(),
                                Outcome{Time::max(), false});
  parallel_for(*options.pool, chunks, [&](std::size_t c) {
    searches[c] = std::make_unique<Search>();
    searches[c]->init(instance, options, shared, /*serial=*/false);
    const std::size_t begin = c * roots.size() / chunks;
    const std::size_t end = (c + 1) * roots.size() / chunks;
    Components child;
    for (std::size_t i = begin; i < end; ++i) {
      const Move& m = roots[i];
      with_inserted(Components{}, instance.job(m.job).active_interval(m.start),
                    child);
      outcomes[i] = searches[c]->solve(
          full & ~bit(m.job), child,
          Time(shared.incumbent.load(std::memory_order_relaxed)), 1);
    }
  });

  std::size_t cache_hits = 0;
  std::size_t cache_entries = 0;
  for (const auto& s : searches) {
    if (s != nullptr) {
      cache_hits += s->cache_hits();
      cache_entries += s->cache_entries();
    }
  }

  Time best = seed_span;
  std::size_t best_idx = roots.size();
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (outcomes[i].exact && outcomes[i].value < best) {
      best = outcomes[i].value;
      best_idx = i;
    }
  }
  const bool aborted = shared.aborted.load(std::memory_order_relaxed);
  if (best_idx == roots.size()) {
    // Seed optimal (nothing strictly better), or budget ran out first.
    return finish(instance, seed_span, std::move(seed_schedule),
                  aborted ? ExactStatus::kBudgetExceeded
                          : ExactStatus::kOptimal,
                  shared, cache_hits, cache_entries);
  }
  if (options.span_only) {
    return finish(instance, best, Schedule(0),
                  aborted ? ExactStatus::kBudgetExceeded
                          : ExactStatus::kOptimal,
                  shared, cache_hits, cache_entries);
  }
  // Reconstruct the winner's subtree inside its own cache.
  const std::size_t winner_chunk = [&] {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * roots.size() / chunks;
      const std::size_t end = (c + 1) * roots.size() / chunks;
      if (best_idx >= begin && best_idx < end) {
        return c;
      }
    }
    FJS_UNREACHABLE("exact: winning root branch outside every chunk");
  }();
  Search& winner = *searches[winner_chunk];
  std::vector<Time> starts(instance.size());
  const Move& wm = roots[best_idx];
  starts[wm.job] = wm.start;
  Components child;
  with_inserted(Components{}, instance.job(wm.job).active_interval(wm.start),
                child);
  if (!winner.reconstruct(full & ~bit(wm.job), std::move(child), best,
                          starts)) {
    return finish(instance, seed_span, std::move(seed_schedule),
                  ExactStatus::kBudgetExceeded, shared, cache_hits,
                  cache_entries);
  }
  return finish(instance, best, schedule_from_starts(instance, starts),
                aborted ? ExactStatus::kBudgetExceeded : ExactStatus::kOptimal,
                shared, cache_hits, cache_entries);
}

Time exact_optimal_span(const Instance& instance, ExactOptions options) {
  const ExactResult result = exact_optimal(instance, std::move(options));
  FJS_REQUIRE(result.optimal(),
              "exact: node budget exhausted — instance too large for the "
              "exact solver; use exact_optimal for the best-so-far result");
  return result.span;
}

}  // namespace fjs
