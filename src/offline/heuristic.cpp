#include "offline/heuristic.h"

#include <algorithm>
#include <vector>

#include "core/interval_set.h"
#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

Time clamp_time(Time value, Time lo, Time hi) {
  return std::max(lo, std::min(value, hi));
}

/// Candidate starts for job j against a fixed set of other intervals:
/// window endpoints plus alignments of either end of j's interval with any
/// endpoint of the fixed union. The marginal-span function is piecewise
/// linear with breakpoints exactly here.
void collect_candidates(const Job& j, const IntervalSet& others,
                        std::vector<Time>& out) {
  out.clear();
  out.push_back(j.arrival);
  out.push_back(j.deadline);
  for (const Interval& c : others.components()) {
    for (const Time e : {c.lo, c.hi}) {
      out.push_back(clamp_time(e, j.arrival, j.deadline));
      out.push_back(clamp_time(e - j.length, j.arrival, j.deadline));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

/// Best start for j given others; returns (start, marginal uncovered
/// measure).
std::pair<Time, Time> best_placement(const Job& j, const IntervalSet& others,
                                     std::vector<Time>& scratch) {
  collect_candidates(j, others, scratch);
  Time best_start = j.deadline;
  Time best_marginal = Time::max();
  for (const Time s : scratch) {
    const Time marginal = others.uncovered_measure(j.active_interval(s));
    if (marginal < best_marginal) {
      best_marginal = marginal;
      best_start = s;
    }
  }
  return {best_start, best_marginal};
}

/// Greedy construction: place jobs in `order`, each at its best alignment
/// against the union of already-placed intervals.
Schedule greedy(const Instance& inst, const std::vector<JobId>& order) {
  Schedule sched(inst.size());
  IntervalSet placed;
  std::vector<Time> scratch;
  for (const JobId id : order) {
    const Job& j = inst.job(id);
    const auto [start, marginal] = best_placement(j, placed, scratch);
    sched.set_start(id, start);
    placed.add(j.active_interval(start));
  }
  return sched;
}

/// One full coordinate-descent pass; returns true if any job moved.
bool improve_pass(const Instance& inst, std::vector<Time>& starts,
                  const std::vector<JobId>& order) {
  bool moved = false;
  std::vector<Time> scratch;
  // Every job's active interval plus the same list sorted by left
  // endpoint, maintained across moves. "Everyone else's union" is then a
  // linear skip-copy of the sorted list, and the bulk IntervalSet
  // constructor sees pre-sorted input, so it never pays a sort — where
  // rebuilding via n× add() per candidate job made this pass O(n² log n).
  std::vector<Interval> intervals(inst.size());
  std::vector<Interval> sorted;
  sorted.reserve(inst.size());
  for (JobId id = 0; id < inst.size(); ++id) {
    intervals[id] = inst.job(id).active_interval(starts[id]);
    sorted.push_back(intervals[id]);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> others_intervals;
  for (const JobId id : order) {
    const Job& j = inst.job(id);
    others_intervals.clear();
    others_intervals.reserve(sorted.size());
    bool skipped = false;
    for (const Interval& iv : sorted) {
      if (!skipped && iv == intervals[id]) {
        skipped = true;  // drop exactly one instance of this job's interval
        continue;
      }
      others_intervals.push_back(iv);
    }
    const IntervalSet others(std::move(others_intervals));
    const Time current_marginal =
        others.uncovered_measure(j.active_interval(starts[id]));
    const auto [best_start, best_marginal] = best_placement(j, others, scratch);
    if (best_marginal < current_marginal) {
      const Interval old_iv = intervals[id];
      starts[id] = best_start;
      intervals[id] = j.active_interval(best_start);
      IntervalSet::replace_in_sorted(sorted, old_iv, intervals[id]);
      moved = true;
    }
  }
  return moved;
}

Time span_of(const Instance& inst, const std::vector<Time>& starts) {
  std::vector<Interval> intervals;
  intervals.reserve(inst.size());
  for (JobId id = 0; id < inst.size(); ++id) {
    intervals.push_back(inst.job(id).active_interval(starts[id]));
  }
  return IntervalSet(std::move(intervals)).measure();
}

}  // namespace

HeuristicResult heuristic_optimal(const Instance& instance,
                                  HeuristicOptions options) {
  if (instance.empty()) {
    return HeuristicResult{.span = Time::zero(), .schedule = Schedule(0)};
  }
  Rng rng(options.seed);

  std::vector<std::vector<JobId>> orders;
  orders.push_back(instance.ids_by_deadline());
  orders.push_back(instance.ids_by_arrival());
  // Longest-first greedy tends to build good "anchors" for short jobs.
  {
    std::vector<JobId> by_length = instance.ids_by_deadline();
    std::stable_sort(by_length.begin(), by_length.end(),
                     [&](JobId a, JobId b) {
                       return instance.job(a).length > instance.job(b).length;
                     });
    orders.push_back(std::move(by_length));
  }
  for (int r = 0; r < options.restarts; ++r) {
    std::vector<JobId> shuffled = instance.ids_by_arrival();
    rng.shuffle(shuffled);
    orders.push_back(std::move(shuffled));
  }

  Time best_span = Time::max();
  std::vector<Time> best_starts;
  std::vector<JobId> pass_order = instance.ids_by_deadline();
  for (const auto& order : orders) {
    Schedule seed_sched = greedy(instance, order);
    std::vector<Time> starts(instance.size());
    for (JobId id = 0; id < instance.size(); ++id) {
      starts[id] = seed_sched.start(id);
    }
    for (int pass = 0; pass < options.max_passes; ++pass) {
      rng.shuffle(pass_order);
      if (!improve_pass(instance, starts, pass_order)) {
        break;
      }
    }
    const Time span = span_of(instance, starts);
    if (span < best_span) {
      best_span = span;
      best_starts = starts;
    }
  }

  Schedule schedule = Schedule::from_starts(best_starts);
  schedule.validate(instance);
  return HeuristicResult{.span = best_span, .schedule = std::move(schedule)};
}

Time heuristic_span(const Instance& instance, HeuristicOptions options) {
  return heuristic_optimal(instance, options).span;
}

}  // namespace fjs
