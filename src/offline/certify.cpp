#include "offline/certify.h"

#include <algorithm>
#include <vector>

#include "core/interval_set.h"
#include "support/assert.h"

namespace fjs {

std::optional<ImprovingMove> find_improving_move(const Instance& instance,
                                                 const Schedule& schedule) {
  schedule.validate(instance);
  const Time span_before = schedule.span(instance);

  for (JobId id = 0; id < instance.size(); ++id) {
    const Job& job = instance.job(id);
    if (job.laxity() == Time::zero()) {
      continue;
    }
    // Union of everyone else.
    IntervalSet others;
    for (JobId other = 0; other < instance.size(); ++other) {
      if (other != id) {
        others.add(schedule.active_interval(instance, other));
      }
    }
    const Time current_marginal =
        others.uncovered_measure(schedule.active_interval(instance, id));
    // Candidate starts: window endpoints + alignments with the other
    // intervals' endpoints — the breakpoints of the marginal function.
    std::vector<Time> candidates = {job.arrival, job.deadline};
    for (const Interval& component : others.components()) {
      for (const Time e : {component.lo, component.hi}) {
        candidates.push_back(
            std::clamp(e, job.arrival, job.deadline));
        candidates.push_back(
            std::clamp(e - job.length, job.arrival, job.deadline));
      }
    }
    for (const Time s : candidates) {
      const Time marginal =
          others.uncovered_measure(job.active_interval(s));
      if (marginal < current_marginal) {
        return ImprovingMove{
            .job = id,
            .new_start = s,
            .span_before = span_before,
            .span_after =
                span_before - (current_marginal - marginal)};
      }
    }
  }
  return std::nullopt;
}

bool is_locally_optimal(const Instance& instance, const Schedule& schedule) {
  return !find_improving_move(instance, schedule).has_value();
}

}  // namespace fjs
