#include "offline/annealing.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/interval_set.h"
#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

Time clamp_time(Time value, Time lo, Time hi) {
  return std::max(lo, std::min(value, hi));
}

}  // namespace

AnnealingResult anneal_schedule(const Instance& instance,
                                AnnealingOptions options) {
  FJS_REQUIRE(options.cooling > 0.0 && options.cooling < 1.0,
              "annealing: cooling in (0,1)");
  FJS_REQUIRE(options.cooling_period > 0, "annealing: bad cooling period");
  if (instance.empty()) {
    return AnnealingResult{.span = Time::zero(), .schedule = Schedule(0),
                           .accepted = 0};
  }

  Rng rng(options.seed);
  std::vector<Time> starts(instance.size());
  for (JobId id = 0; id < instance.size(); ++id) {
    starts[id] = instance.job(id).deadline;
  }
  // Each job's active interval, plus the same intervals sorted by left
  // endpoint. A move replaces one interval in the sorted list (two
  // memmoves), so every span evaluation is a single linear pass with no
  // allocation — this loop runs once per annealing iteration.
  std::vector<Interval> intervals(instance.size());
  std::vector<Interval> sorted;
  sorted.reserve(instance.size());
  for (JobId id = 0; id < instance.size(); ++id) {
    intervals[id] = instance.job(id).active_interval(starts[id]);
    sorted.push_back(intervals[id]);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  Time current = IntervalSet::sorted_union_measure(sorted);
  Time best = current;
  std::vector<Time> best_starts = starts;

  double temperature =
      options.initial_temperature * static_cast<double>(current.ticks());
  temperature = std::max(temperature, 1.0);

  AnnealingResult result;
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    const auto id = static_cast<JobId>(rng.uniform_int(
        0, static_cast<std::int64_t>(instance.size()) - 1));
    const Job& job = instance.job(id);
    if (job.laxity() == Time::zero()) {
      continue;  // nothing to move
    }

    Time proposal;
    if (rng.bernoulli(options.alignment_move_probability)) {
      // Alignment move: snap one end of this job's interval to another
      // job's current interval endpoint.
      const auto other = static_cast<JobId>(rng.uniform_int(
          0, static_cast<std::int64_t>(instance.size()) - 1));
      const Interval iv = instance.job(other).active_interval(starts[other]);
      const Time anchor = rng.bernoulli(0.5) ? iv.lo : iv.hi;
      proposal = rng.bernoulli(0.5) ? anchor : anchor - job.length;
    } else {
      proposal = Time(rng.uniform_int(job.arrival.ticks(),
                                      job.deadline.ticks()));
    }
    proposal = clamp_time(proposal, job.arrival, job.deadline);
    if (proposal == starts[id]) {
      continue;
    }

    const Time saved = starts[id];
    const Interval old_iv = intervals[id];
    const Interval new_iv = job.active_interval(proposal);
    starts[id] = proposal;
    intervals[id] = new_iv;
    IntervalSet::replace_in_sorted(sorted, old_iv, new_iv);
    const Time candidate = IntervalSet::sorted_union_measure(sorted);
    const double delta =
        static_cast<double>((candidate - current).ticks());
    const bool accept =
        delta <= 0.0 || rng.uniform01() < std::exp(-delta / temperature);
    if (accept) {
      current = candidate;
      ++result.accepted;
      if (current < best) {
        best = current;
        best_starts = starts;
      }
    } else {
      starts[id] = saved;
      intervals[id] = old_iv;
      IntervalSet::replace_in_sorted(sorted, new_iv, old_iv);
    }
    if ((iter + 1) % options.cooling_period == 0) {
      temperature = std::max(temperature * options.cooling, 1.0);
    }
  }

  result.span = best;
  result.schedule = Schedule::from_starts(best_starts);
  result.schedule.validate(instance);
  FJS_CHECK(result.schedule.span(instance) == best,
            "annealing: span mismatch on reconstruction");
  return result;
}

}  // namespace fjs
