#include "offline/annealing.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/interval_set.h"
#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

Time clamp_time(Time value, Time lo, Time hi) {
  return std::max(lo, std::min(value, hi));
}

/// Incremental union-measure evaluator over a sorted interval list.
///
/// Mirrors IntervalSet::sorted_union_measure exactly, but memoizes the
/// left-to-right scan state (closed measure so far + the open run) after
/// every index of the committed list. A proposal that replaces one
/// interval is then evaluated WITHOUT mutating the list: the replacement's
/// erase/insert positions are computed the same way replace_in_sorted
/// computes them, the scan resumes from the committed state just before
/// the first affected index, and it short-circuits as soon as the running
/// state reconverges with the committed state — from there the suffix
/// contributes exactly `total - closed[k]`, already known. Rejected
/// proposals therefore touch only the affected window and leave nothing to
/// undo; only accepted moves pay the O(n) rebuild.
///
/// Bit-identity: the scan is the same integer arithmetic over the same
/// virtual element sequence that replace_in_sorted + sorted_union_measure
/// would produce, so propose() returns exactly the full-path measure.
class IncrementalUnion {
 public:
  void rebuild(const std::vector<Interval>& sorted) {
    const std::size_t n = sorted.size();
    closed_.resize(n);
    open_.resize(n);
    lo_.resize(n);
    hi_.resize(n);
    Time closed = Time::zero();
    Time lo;
    Time hi;
    bool open = false;
    for (std::size_t i = 0; i < n; ++i) {
      step(sorted[i], closed, open, lo, hi);
      closed_[i] = closed;
      open_[i] = open ? 1 : 0;
      lo_[i] = lo;
      hi_[i] = hi;
    }
    total_ = closed + (open ? hi - lo : Time::zero());
  }

  Time total() const { return total_; }

  /// Applies the replacement to `sorted` (same final list as
  /// replace_in_sorted, but moving only the window between the erase and
  /// insert positions instead of the whole tail twice) and patches the
  /// committed state arrays: entries are recomputed from the first affected
  /// index and, once the scan state reconverges with the old committed
  /// state in the aligned region, the remaining closed-measure entries just
  /// shift by the (often zero) measure delta.
  void commit(std::vector<Interval>& sorted, const Interval& old_iv,
              const Interval& new_iv) {
    const std::size_t n = sorted.size();
    const auto [r, s] = locate(sorted, old_iv, new_iv);
    if (r <= s) {
      std::move(sorted.begin() + static_cast<std::ptrdiff_t>(r) + 1,
                sorted.begin() + static_cast<std::ptrdiff_t>(s) + 1,
                sorted.begin() + static_cast<std::ptrdiff_t>(r));
    } else {
      std::move_backward(sorted.begin() + static_cast<std::ptrdiff_t>(s),
                         sorted.begin() + static_cast<std::ptrdiff_t>(r),
                         sorted.begin() + static_cast<std::ptrdiff_t>(r) + 1);
    }
    sorted[s] = new_iv;

    const std::size_t first = std::min(r, s);
    const std::size_t last = std::max(r, s);
    Time closed = Time::zero();
    Time lo;
    Time hi;
    bool open = false;
    if (first > 0) {
      closed = closed_[first - 1];
      open = open_[first - 1] != 0;
      lo = lo_[first - 1];
      hi = hi_[first - 1];
    }
    for (std::size_t k = first; k < n; ++k) {
      step(sorted[k], closed, open, lo, hi);
      // Aligned region: old entries at >= last still describe the same
      // elements (they are only overwritten once the scan passes them).
      if (k >= last && same_state(k, open, lo, hi)) {
        const Time delta = closed - closed_[k];
        if (delta != Time::zero()) {
          for (std::size_t j = k; j < n; ++j) {
            closed_[j] += delta;
          }
          total_ += delta;
        }
        return;
      }
      closed_[k] = closed;
      open_[k] = open ? 1 : 0;
      lo_[k] = lo;
      hi_[k] = hi;
    }
    total_ = closed + (open ? hi - lo : Time::zero());
  }

  /// Union measure of `sorted` with `old_iv` replaced by `new_iv`, without
  /// touching `sorted` (which must be the list rebuild() last saw).
  Time propose(const std::vector<Interval>& sorted, const Interval& old_iv,
               const Interval& new_iv) const {
    const std::size_t n = sorted.size();
    const auto [r, s] = locate(sorted, old_iv, new_iv);

    // Virtual post-replacement element at index k: outside [min(r,s),
    // max(r,s)] the list is unchanged; inside, elements shift one slot
    // toward r and new_iv sits at s.
    const auto at = [&](std::size_t k) -> const Interval& {
      if (k == s) {
        return new_iv;
      }
      if (r <= s) {
        return (k >= r && k < s) ? sorted[k + 1] : sorted[k];
      }
      return (k > s && k <= r) ? sorted[k - 1] : sorted[k];
    };

    const std::size_t first = std::min(r, s);
    const std::size_t last = std::max(r, s);
    Time closed = Time::zero();
    Time lo;
    Time hi;
    bool open = false;
    if (first > 0) {
      closed = closed_[first - 1];
      open = open_[first - 1] != 0;
      lo = lo_[first - 1];
      hi = hi_[first - 1];
    }
    for (std::size_t k = first; k < n; ++k) {
      step(at(k), closed, open, lo, hi);
      if (k >= last) {
        // Aligned region: the suffix past k is the committed suffix, so
        // matching states evolve identically from here on.
        if (same_state(k, open, lo, hi)) {
          return closed + (total_ - closed_[k]);
        }
        continue;
      }
      if (r < s && k >= r && same_state(k + 1, open, lo, hi)) {
        // Shifted region, erase before insert: virtual index k holds
        // committed element k+1. Matching the committed state one slot
        // ahead pins the whole shifted remainder — jump to the state just
        // before new_iv at s (committed state after element s).
        closed += closed_[s] - closed_[k + 1];
        open = open_[s] != 0;
        lo = lo_[s];
        hi = hi_[s];
        k = s - 1;
        continue;
      }
      if (s < r && k > s && same_state(k - 1, open, lo, hi)) {
        // Shifted region, insert before erase: virtual index k holds
        // committed element k-1. Jump to the state after virtual index r
        // (committed state after element r-1); the loop resumes in the
        // aligned region.
        closed += closed_[r - 1] - closed_[k - 1];
        open = open_[r - 1] != 0;
        lo = lo_[r - 1];
        hi = hi_[r - 1];
        k = r;
        continue;
      }
    }
    return closed + (open ? hi - lo : Time::zero());
  }

 private:
  /// Same location rules as IntervalSet::replace_in_sorted: r = index the
  /// erase would remove (first exact match in the equal-lo run), s = index
  /// the insert would land on after the erase (the pre-erase lower bound;
  /// positions past r shift left by one).
  static std::pair<std::size_t, std::size_t> locate(
      const std::vector<Interval>& sorted, const Interval& old_iv,
      const Interval& new_iv) {
    const auto by_lo = [](const Interval& a, const Interval& b) {
      return a.lo < b.lo;
    };
    auto it = std::lower_bound(sorted.begin(), sorted.end(), old_iv, by_lo);
    while (it != sorted.end() && *it != old_iv) {
      ++it;  // walk the equal-lo run to the matching instance
    }
    FJS_REQUIRE(it != sorted.end() && *it == old_iv,
                "IncrementalUnion: old interval not found");
    const auto r = static_cast<std::size_t>(it - sorted.begin());
    const auto s0 = static_cast<std::size_t>(
        std::lower_bound(sorted.begin(), sorted.end(), new_iv, by_lo) -
        sorted.begin());
    return {r, s0 > r ? s0 - 1 : s0};
  }

  static void step(const Interval& iv, Time& closed, bool& open, Time& lo,
                   Time& hi) {
    if (iv.empty()) {
      return;
    }
    if (!open) {
      lo = iv.lo;
      hi = iv.hi;
      open = true;
      return;
    }
    if (iv.lo <= hi) {
      hi = std::max(hi, iv.hi);
    } else {
      closed += hi - lo;
      lo = iv.lo;
      hi = iv.hi;
    }
  }

  bool same_state(std::size_t k, bool open, Time lo, Time hi) const {
    if (open != (open_[k] != 0)) {
      return false;
    }
    return !open || (lo == lo_[k] && hi == hi_[k]);
  }

  std::vector<Time> closed_;   ///< union measure of runs closed by index i
  std::vector<Time> lo_;       ///< open run after index i (if open_[i])
  std::vector<Time> hi_;
  std::vector<std::uint8_t> open_;
  Time total_ = Time::zero();  ///< full-list measure
};

}  // namespace

AnnealingResult anneal_schedule(const Instance& instance,
                                AnnealingOptions options) {
  FJS_REQUIRE(options.cooling > 0.0 && options.cooling < 1.0,
              "annealing: cooling in (0,1)");
  FJS_REQUIRE(options.cooling_period > 0, "annealing: bad cooling period");
  if (instance.empty()) {
    return AnnealingResult{.span = Time::zero(), .schedule = Schedule(0),
                           .accepted = 0};
  }

  Rng rng(options.seed);
  std::vector<Time> starts(instance.size());
  for (JobId id = 0; id < instance.size(); ++id) {
    starts[id] = instance.job(id).deadline;
  }
  // Each job's active interval, plus the same intervals sorted by left
  // endpoint. A move replaces one interval in the sorted list (two
  // memmoves), so every span evaluation is a single linear pass with no
  // allocation — this loop runs once per annealing iteration.
  std::vector<Interval> intervals(instance.size());
  std::vector<Interval> sorted;
  sorted.reserve(instance.size());
  for (JobId id = 0; id < instance.size(); ++id) {
    intervals[id] = instance.job(id).active_interval(starts[id]);
    sorted.push_back(intervals[id]);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  IncrementalUnion inc;
  if (options.incremental) {
    inc.rebuild(sorted);
  }
  Time current = options.incremental ? inc.total()
                                     : IntervalSet::sorted_union_measure(sorted);
  Time best = current;
  std::vector<Time> best_starts = starts;

  double temperature =
      options.initial_temperature * static_cast<double>(current.ticks());
  temperature = std::max(temperature, 1.0);

  AnnealingResult result;
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    const auto id = static_cast<JobId>(rng.uniform_int(
        0, static_cast<std::int64_t>(instance.size()) - 1));
    const Job& job = instance.job(id);
    if (job.laxity() == Time::zero()) {
      continue;  // nothing to move
    }

    Time proposal;
    if (rng.bernoulli(options.alignment_move_probability)) {
      // Alignment move: snap one end of this job's interval to another
      // job's current interval endpoint.
      const auto other = static_cast<JobId>(rng.uniform_int(
          0, static_cast<std::int64_t>(instance.size()) - 1));
      const Interval iv = instance.job(other).active_interval(starts[other]);
      const Time anchor = rng.bernoulli(0.5) ? iv.lo : iv.hi;
      proposal = rng.bernoulli(0.5) ? anchor : anchor - job.length;
    } else {
      proposal = Time(rng.uniform_int(job.arrival.ticks(),
                                      job.deadline.ticks()));
    }
    proposal = clamp_time(proposal, job.arrival, job.deadline);
    if (proposal == starts[id]) {
      continue;
    }

    const Time saved = starts[id];
    const Interval old_iv = intervals[id];
    const Interval new_iv = job.active_interval(proposal);
    Time candidate;
    if (options.incremental) {
      // Evaluate without mutating anything: a rejected proposal then costs
      // only the affected window of the scan and leaves nothing to undo.
      candidate = inc.propose(sorted, old_iv, new_iv);
    } else {
      starts[id] = proposal;
      intervals[id] = new_iv;
      IntervalSet::replace_in_sorted(sorted, old_iv, new_iv);
      candidate = IntervalSet::sorted_union_measure(sorted);
    }
    const double delta =
        static_cast<double>((candidate - current).ticks());
    const bool accept =
        delta <= 0.0 || rng.uniform01() < std::exp(-delta / temperature);
    if (accept) {
      if (options.incremental) {
        starts[id] = proposal;
        intervals[id] = new_iv;
        inc.commit(sorted, old_iv, new_iv);
      }
      current = candidate;
      ++result.accepted;
      if (current < best) {
        best = current;
        best_starts = starts;
      }
    } else if (!options.incremental) {
      starts[id] = saved;
      intervals[id] = old_iv;
      IntervalSet::replace_in_sorted(sorted, new_iv, old_iv);
    }
    if ((iter + 1) % options.cooling_period == 0) {
      temperature = std::max(temperature * options.cooling, 1.0);
    }
  }

  result.span = best;
  result.schedule = Schedule::from_starts(best_starts);
  result.schedule.validate(instance);
  FJS_CHECK(result.schedule.span(instance) == best,
            "annealing: span mismatch on reconstruction");
  return result;
}

}  // namespace fjs
