#include "offline/lower_bound.h"

#include <algorithm>
#include <map>

#include "core/interval_set.h"
#include "support/assert.h"

namespace fjs {

Time mandatory_lower_bound(const Instance& instance) {
  IntervalSet mandatory;
  for (const Job& j : instance.jobs()) {
    // Every placement of J covers [d(J), a(J)+p(J)) (empty if laxity >= p).
    mandatory.add(Interval(j.deadline, j.arrival + j.length));
  }
  return mandatory.measure();
}

Time chain_lower_bound(const Instance& instance) {
  if (instance.empty()) {
    return Time::zero();
  }
  // f(J) = best chain weight ending at J
  //      = p(J) + max{ f(I) : d(I) + p(I) <= a(J) }.
  // Process jobs in arrival order; maintain a Pareto map from
  // latest-completion key (d+p) to the best chain weight achievable with
  // that key or less, keeping keys and values jointly increasing.
  std::map<Time, Time> pareto;  // key -> best weight with completion <= key
  auto query = [&pareto](Time key) {
    auto it = pareto.upper_bound(key);
    if (it == pareto.begin()) {
      return Time::zero();
    }
    return std::prev(it)->second;
  };
  auto insert = [&pareto](Time key, Time value) {
    auto it = pareto.upper_bound(key);
    if (it != pareto.begin() && std::prev(it)->second >= value) {
      return;  // dominated by an earlier-or-equal key with >= value
    }
    auto [pos, inserted] = pareto.insert_or_assign(key, value);
    // Remove later keys that are now dominated.
    auto next = std::next(pos);
    while (next != pareto.end() && next->second <= value) {
      next = pareto.erase(next);
    }
  };

  const std::vector<JobId> order = instance.ids_by_arrival();
  Time best = Time::zero();
  for (const JobId id : order) {
    const Job& j = instance.job(id);
    const Time f = query(j.arrival).checked_add(j.length);
    best = std::max(best, f);
    insert(j.deadline.checked_add(j.length), f);
  }
  return best;
}

Time max_length_lower_bound(const Instance& instance) {
  if (instance.empty()) {
    return Time::zero();
  }
  return instance.max_length();
}

Time best_lower_bound(const Instance& instance) {
  if (instance.empty()) {
    return Time::zero();
  }
  return std::max({mandatory_lower_bound(instance),
                   chain_lower_bound(instance),
                   max_length_lower_bound(instance)});
}

}  // namespace fjs
