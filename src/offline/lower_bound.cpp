#include "offline/lower_bound.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/interval_set.h"
#include "support/assert.h"

namespace fjs {
namespace {

/// Insertion sort fallback for the tiny inputs these bounds see in the
/// miner's inner loop; std::sort beyond 32 elements. All comparators used
/// here are total orders or feed order-independent reductions, so the
/// results are identical either way.
template <typename T, typename Less>
void sort_small(std::vector<T>& v, Less less) {
  if (v.size() > 32) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  for (std::size_t i = 1; i < v.size(); ++i) {
    const T val = v[i];
    std::size_t j = i;
    while (j > 0 && less(val, v[j - 1])) {
      v[j] = v[j - 1];
      --j;
    }
    v[j] = val;
  }
}

}  // namespace

Time mandatory_lower_bound(InstanceView view) {
  // Union measure over the mandatory regions without materializing an
  // IntervalSet: collect, sort by left endpoint, one linear pass. The
  // scratch is thread-local so the miner's per-candidate calls stop
  // allocating.
  thread_local std::vector<Interval> mandatory;
  mandatory.clear();
  const std::size_t n = view.size();
  for (JobId id = 0; id < n; ++id) {
    // Every placement of J covers [d(J), a(J)+p(J)) (empty if laxity >= p).
    // Saturating: a <= d gives a+p <= d+p <= max under the Instance
    // invariant, but this bound also serves raw job lists in tests and
    // tools, so clamp instead of relying on the caller.
    const Interval mand(view.deadline(id),
                        view.arrival(id).saturating_add(view.length(id)));
    if (!mand.empty()) {
      mandatory.push_back(mand);
    }
  }
  sort_small(mandatory,
             [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  return IntervalSet::sorted_union_measure(mandatory);
}

Time chain_lower_bound(InstanceView view) {
  if (view.empty()) {
    return Time::zero();
  }
  // f(J) = best chain weight ending at J
  //      = p(J) + max{ f(I) : d(I) + p(I) <= a(J) }.
  // Process jobs in arrival order; maintain a Pareto front from
  // latest-completion key (d+p) to the best chain weight achievable with
  // that key or less, keeping keys and values jointly increasing. A flat
  // sorted vector: at lower-bound sizes the node-based map's allocation
  // and pointer chasing cost more than the memmoves.
  thread_local std::vector<std::pair<Time, Time>> pareto;
  pareto.clear();
  const auto by_key = [](const std::pair<Time, Time>& e, Time key) {
    return e.first <= key;  // partition point = first entry with key' > key
  };
  auto query = [&](Time key) {
    const auto it =
        std::partition_point(pareto.begin(), pareto.end(),
                             [&](const std::pair<Time, Time>& e) {
                               return by_key(e, key);
                             });
    return it == pareto.begin() ? Time::zero() : std::prev(it)->second;
  };
  auto insert = [&](Time key, Time value) {
    auto it =
        std::partition_point(pareto.begin(), pareto.end(),
                             [&](const std::pair<Time, Time>& e) {
                               return by_key(e, key);
                             });
    if (it != pareto.begin() && std::prev(it)->second >= value) {
      return;  // dominated by an earlier-or-equal key with >= value
    }
    if (it != pareto.begin() && std::prev(it)->first == key) {
      std::prev(it)->second = value;  // same key, strictly better weight
      --it;
    } else {
      it = pareto.insert(it, {key, value});
    }
    // Remove later keys that are now dominated (a contiguous run).
    auto last = std::next(it);
    while (last != pareto.end() && last->second <= value) {
      ++last;
    }
    pareto.erase(std::next(it), last);
  };

  // Same (arrival, id) order as Instance::ids_by_arrival(), built in a
  // thread-local scratch.
  thread_local std::vector<JobId> order;
  const std::size_t n = view.size();
  order.resize(n);
  for (JobId j = 0; j < n; ++j) {
    order[j] = j;
  }
  const std::span<const Time> arrivals = view.arrivals();
  sort_small(order, [arrivals](JobId a, JobId b) {
    if (arrivals[a] != arrivals[b]) {
      return arrivals[a] < arrivals[b];
    }
    return a < b;
  });

  Time best = Time::zero();
  for (const JobId id : order) {
    // Both checked_adds are provably in range under the Instance d+p
    // invariant: the chain condition d(I)+p(I) <= a(J) bounds every
    // predecessor weight f(I) by a(J), so f(J) = f(I)+p(J) <= a(J)+p(J)
    // <= d(J)+p(J) <= max; the insert key is d+p <= max directly.
    const Time length = view.length(id);
    const Time f = query(view.arrival(id)).checked_add(length);
    best = std::max(best, f);
    insert(view.deadline(id).checked_add(length), f);
  }
  return best;
}

Time max_length_lower_bound(InstanceView view) {
  if (view.empty()) {
    return Time::zero();
  }
  return view.max_length();
}

Time best_lower_bound(InstanceView view) {
  if (view.empty()) {
    return Time::zero();
  }
  return std::max({mandatory_lower_bound(view), chain_lower_bound(view),
                   max_length_lower_bound(view)});
}

}  // namespace fjs
