#include "offline/lower_bound.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/interval_set.h"
#include "support/assert.h"
#include "support/simd.h"

namespace fjs {
namespace {

/// Insertion sort fallback for the tiny inputs these bounds see in the
/// miner's inner loop; std::sort beyond 32 elements. All comparators used
/// here are total orders or feed order-independent reductions, so the
/// results are identical either way.
template <typename T, typename Less>
void sort_small(std::vector<T>& v, Less less) {
  if (v.size() > 32) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  for (std::size_t i = 1; i < v.size(); ++i) {
    const T val = v[i];
    std::size_t j = i;
    while (j > 0 && less(val, v[j - 1])) {
      v[j] = v[j - 1];
      --j;
    }
    v[j] = val;
  }
}

/// The legacy row-at-a-time mandatory bound; stays the scalar-tier
/// authority (and the FJS_FORCE_SCALAR differential reference).
Time mandatory_lower_bound_scalar(InstanceView view) {
  // Union measure over the mandatory regions without materializing an
  // IntervalSet: collect, sort by left endpoint, one linear pass. The
  // scratch is thread-local so the miner's per-candidate calls stop
  // allocating.
  thread_local std::vector<Interval> mandatory;
  mandatory.clear();
  const std::size_t n = view.size();
  for (JobId id = 0; id < n; ++id) {
    // Every placement of J covers [d(J), a(J)+p(J)) (empty if laxity >= p).
    // Saturating: a <= d gives a+p <= d+p <= max under the Instance
    // invariant, but this bound also serves raw job lists in tests and
    // tools, so clamp instead of relying on the caller.
    const Interval mand(view.deadline(id),
                        view.arrival(id).saturating_add(view.length(id)));
    if (!mand.empty()) {
      mandatory.push_back(mand);
    }
  }
  sort_small(mandatory,
             [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  return IntervalSet::sorted_union_measure(mandatory);
}

}  // namespace

Time mandatory_lower_bound(InstanceView view) {
  const simd::Tier tier = simd::active_tier();
  if (tier == simd::Tier::kScalar || view.size() <= 32) {
    // Tiny inputs: the vector setup (scatter + radix scratch) costs more
    // than the insertion sort it replaces, and the scalar tier must run
    // the legacy code verbatim for the force-scalar differential.
    return mandatory_lower_bound_scalar(view);
  }
  // Vector path, bit-identical by construction: (1) the window closes
  // hi = a + p come from the lane-parallel saturating kernel (same clamp
  // rule as Time::saturating_add); (2) the non-empty windows compact into
  // SoA lo/hi scratch; (3) ids order by lo via the radix kernel (ties by
  // id — union measure is invariant to tie order); (4) a fused linear
  // pass reproduces IntervalSet::sorted_union_measure's run merging
  // (skip-empty already handled by the compaction, lo >= run_lo holds by
  // the sort). Same intervals, same canonical union — same Time.
  const std::size_t n = view.size();
  thread_local std::vector<std::int64_t> hi_scratch;
  thread_local std::vector<Time> lo_compact;
  thread_local std::vector<Time> hi_compact;
  thread_local std::vector<JobId> order;
  hi_scratch.resize(n);
  simd::saturating_sum_into(view.arrivals().data(), view.lengths().data(),
                            hi_scratch.data(), n, tier);
  lo_compact.clear();
  hi_compact.clear();
  const std::span<const Time> deadlines = view.deadlines();
  for (std::size_t i = 0; i < n; ++i) {
    const Time lo = deadlines[i];
    const Time hi = Time(hi_scratch[i]);
    if (lo < hi) {  // Interval::empty() is hi <= lo
      lo_compact.push_back(lo);
      hi_compact.push_back(hi);
    }
  }
  if (lo_compact.empty()) {
    return Time::zero();
  }
  simd::sort_ids_by_key(lo_compact.data(), lo_compact.size(), order, tier);
  Time total = Time::zero();
  Time run_lo = lo_compact[order[0]];
  Time run_hi = hi_compact[order[0]];
  for (std::size_t i = 1; i < order.size(); ++i) {
    const Time lo = lo_compact[order[i]];
    const Time hi = hi_compact[order[i]];
    if (lo > run_hi) {
      total += run_hi - run_lo;
      run_lo = lo;
      run_hi = hi;
    } else {
      run_hi = std::max(run_hi, hi);
    }
  }
  total += run_hi - run_lo;
  return total;
}

Time chain_lower_bound(InstanceView view) {
  if (view.empty()) {
    return Time::zero();
  }
  // f(J) = best chain weight ending at J
  //      = p(J) + max{ f(I) : d(I) + p(I) <= a(J) }.
  // Process jobs in arrival order; maintain a Pareto front from
  // latest-completion key (d+p) to the best chain weight achievable with
  // that key or less, keeping keys and values jointly increasing. A flat
  // sorted vector: at lower-bound sizes the node-based map's allocation
  // and pointer chasing cost more than the memmoves.
  thread_local std::vector<std::pair<Time, Time>> pareto;
  pareto.clear();
  const auto by_key = [](const std::pair<Time, Time>& e, Time key) {
    return e.first <= key;  // partition point = first entry with key' > key
  };
  auto query = [&](Time key) {
    const auto it =
        std::partition_point(pareto.begin(), pareto.end(),
                             [&](const std::pair<Time, Time>& e) {
                               return by_key(e, key);
                             });
    return it == pareto.begin() ? Time::zero() : std::prev(it)->second;
  };
  auto insert = [&](Time key, Time value) {
    auto it =
        std::partition_point(pareto.begin(), pareto.end(),
                             [&](const std::pair<Time, Time>& e) {
                               return by_key(e, key);
                             });
    if (it != pareto.begin() && std::prev(it)->second >= value) {
      return;  // dominated by an earlier-or-equal key with >= value
    }
    if (it != pareto.begin() && std::prev(it)->first == key) {
      std::prev(it)->second = value;  // same key, strictly better weight
      --it;
    } else {
      it = pareto.insert(it, {key, value});
    }
    // Remove later keys that are now dominated (a contiguous run).
    auto last = std::next(it);
    while (last != pareto.end() && last->second <= value) {
      ++last;
    }
    pareto.erase(std::next(it), last);
  };

  // Same (arrival, id) order as Instance::ids_by_arrival(), built in a
  // thread-local scratch through the shared radix/comparison kernel.
  thread_local std::vector<JobId> order;
  const std::span<const Time> arrivals = view.arrivals();
  simd::sort_ids_by_key(arrivals.data(), arrivals.size(), order);

  Time best = Time::zero();
  for (const JobId id : order) {
    // Both checked_adds are provably in range under the Instance d+p
    // invariant: the chain condition d(I)+p(I) <= a(J) bounds every
    // predecessor weight f(I) by a(J), so f(J) = f(I)+p(J) <= a(J)+p(J)
    // <= d(J)+p(J) <= max; the insert key is d+p <= max directly.
    const Time length = view.length(id);
    const Time f = query(view.arrival(id)).checked_add(length);
    best = std::max(best, f);
    insert(view.deadline(id).checked_add(length), f);
  }
  return best;
}

Time max_length_lower_bound(InstanceView view) {
  if (view.empty()) {
    return Time::zero();
  }
  return view.max_length();
}

Time best_lower_bound(InstanceView view) {
  if (view.empty()) {
    return Time::zero();
  }
  return std::max({mandatory_lower_bound(view), chain_lower_bound(view),
                   max_length_lower_bound(view)});
}

}  // namespace fjs
