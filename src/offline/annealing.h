// Simulated-annealing offline optimizer — a second, independent OPT upper
// bound beside the deterministic alignment local search (heuristic.h).
//
// Any valid schedule upper-bounds OPT, so annealing can only tighten the
// measurement bracket; the benches use the min of both heuristics. Moves
// jump a job either to an alignment breakpoint (exploit) or to a uniform
// random point of its window (explore), with Metropolis acceptance under a
// geometric cooling schedule.
#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/schedule.h"

namespace fjs {

struct AnnealingOptions {
  std::uint64_t seed = 0xA55A'0001ULL;
  /// Total number of proposed moves.
  std::size_t iterations = 20'000;
  /// Initial temperature as a fraction of the initial span.
  double initial_temperature = 0.10;
  /// Geometric cooling multiplier applied every `cooling_period` moves.
  double cooling = 0.95;
  std::size_t cooling_period = 250;
  /// Probability of an alignment move (vs uniform-random jump).
  double alignment_move_probability = 0.7;
  /// Evaluate proposals through the incremental union-measure scan instead
  /// of a full pass over all intervals. The incremental path replays the
  /// committed prefix state up to the first index the move can change and
  /// stops at the first state reconvergence, so a rejected proposal costs
  /// O(affected window) instead of O(n) — and rejection leaves no state to
  /// undo. Spans, accepted counts and schedules are bit-identical either
  /// way (same integer arithmetic, same RNG draw sequence); the flag exists
  /// so tests and benches can compare the two paths.
  bool incremental = true;
};

struct AnnealingResult {
  Time span;
  Schedule schedule;
  /// Number of accepted moves (diagnostics).
  std::size_t accepted = 0;
};

/// Runs annealing from the all-at-deadline schedule. Deterministic for a
/// fixed (instance, options) pair.
AnnealingResult anneal_schedule(const Instance& instance,
                                AnnealingOptions options = {});

}  // namespace fjs
