// Offline heuristic: a strong upper bound on the optimal span for
// instances too large for the exact solver.
//
// Pipeline: several greedy constructions (align-to-placed with different
// insertion orders) followed by coordinate-descent local search. For one
// job with all others fixed, the marginal span is piecewise linear in the
// start, so its exact minimum lies at a window endpoint or at an alignment
// with another interval's endpoint — the candidate set we scan.
#pragma once

#include <cstdint>

#include "core/instance.h"
#include "core/schedule.h"

namespace fjs {

struct HeuristicOptions {
  /// Number of randomized greedy restarts (in addition to the two
  /// deterministic seeds: deadline order and arrival order).
  int restarts = 3;
  /// Cap on local-search passes per restart.
  int max_passes = 40;
  std::uint64_t seed = 0x5EEDF00DULL;
};

struct HeuristicResult {
  Time span;
  Schedule schedule;
};

/// Returns a valid schedule whose span upper-bounds (and usually closely
/// tracks) the optimum.
HeuristicResult heuristic_optimal(const Instance& instance,
                                  HeuristicOptions options = {});

/// Convenience: the heuristic span only.
Time heuristic_span(const Instance& instance, HeuristicOptions options = {});

}  // namespace fjs
