// Schedule-quality certificates.
//
// A claimed-optimal schedule can be partially audited without re-solving:
// single-job local optimality (no one job can move to reduce the span) is
// a necessary condition for global optimality, cheap to check exactly
// (the one-job marginal cost is piecewise linear with breakpoints at
// window endpoints and alignments with other jobs' interval endpoints).
#pragma once

#include <optional>

#include "core/instance.h"
#include "core/schedule.h"

namespace fjs {

/// A strictly improving single-job move, if one exists.
struct ImprovingMove {
  JobId job = kInvalidJob;
  Time new_start;
  Time span_before;
  Time span_after;
};

/// Finds a strictly improving single-job move, or nullopt if the schedule
/// is single-move (1-opt) locally optimal. Every globally optimal
/// schedule returns nullopt; the converse need not hold.
std::optional<ImprovingMove> find_improving_move(const Instance& instance,
                                                 const Schedule& schedule);

/// Convenience predicate.
bool is_locally_optimal(const Instance& instance, const Schedule& schedule);

}  // namespace fjs
