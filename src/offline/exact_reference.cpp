// Legacy exhaustive grid DFS — the original exact solver, kept as the
// differential-testing oracle for the branch-and-bound in exact.cpp and as
// the baseline body of the E9 solver benchmarks. Deliberately unchanged in
// structure: its value is that it is slow, simple, and easy to audit.
#include "offline/exact.h"

#include <algorithm>
#include <vector>

#include "core/interval_set.h"
#include "support/assert.h"

namespace fjs {
namespace {

/// DFS state shared across the recursion.
struct GridSearch {
  const Instance& instance;
  const ExactOptions& options;
  std::vector<JobId> order;               // most-constrained-first
  std::vector<IntervalSet> mandatory_sfx; // suffix unions of mandatory regions
  std::vector<Time> chosen;               // start per order position
  std::vector<Time> best_starts;
  Time best_span = Time::max();
  std::size_t nodes = 0;

  GridSearch(const Instance& inst, const ExactOptions& opts)
      : instance(inst), options(opts) {}

  void run() {
    build_order();
    build_mandatory_suffixes();
    chosen.resize(order.size());
    best_starts.resize(order.size());
    IntervalSet placed;
    dfs(0, placed);
    FJS_CHECK(best_span < Time::max(), "exact reference: no schedule found");
  }

  void build_order() {
    order = instance.ids_by_deadline();
    // Most-constrained-first: small laxity branches less; longer jobs first
    // among equals so big intervals prune early.
    std::stable_sort(order.begin(), order.end(), [this](JobId a, JobId b) {
      const Job& ja = instance.job(a);
      const Job& jb = instance.job(b);
      if (ja.laxity() != jb.laxity()) {
        return ja.laxity() < jb.laxity();
      }
      return ja.length > jb.length;
    });
  }

  void build_mandatory_suffixes() {
    mandatory_sfx.assign(order.size() + 1, IntervalSet{});
    for (std::size_t i = order.size(); i-- > 0;) {
      mandatory_sfx[i] = mandatory_sfx[i + 1];
      const Job& j = instance.job(order[i]);
      mandatory_sfx[i].add(Interval(j.deadline, j.arrival + j.length));
    }
  }

  Time bound_with_mandatory(const IntervalSet& placed, std::size_t index) {
    IntervalSet merged = placed;
    merged.unite(mandatory_sfx[index]);
    return merged.measure();
  }

  void dfs(std::size_t index, const IntervalSet& placed) {
    ++nodes;
    FJS_REQUIRE(nodes <= options.max_nodes,
                "exact reference: node budget exhausted — instance too large "
                "for the grid DFS");
    if (index == order.size()) {
      const Time span = placed.measure();
      if (span < best_span) {
        best_span = span;
        best_starts = chosen;
      }
      return;
    }
    if (bound_with_mandatory(placed, index) >= best_span) {
      return;  // admissible bound: cannot beat the incumbent
    }
    const Job& j = instance.job(order[index]);

    // Enumerate grid starts, cheapest marginal contribution first — good
    // incumbents early make the bound bite.
    struct Candidate {
      Time start;
      Time marginal;
    };
    std::vector<Candidate> candidates;
    const std::int64_t q = options.quantum.ticks();
    for (std::int64_t s = j.arrival.ticks(); s <= j.deadline.ticks(); s += q) {
      const Interval iv = j.active_interval(Time(s));
      candidates.push_back(Candidate{Time(s), placed.uncovered_measure(iv)});
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.marginal < b.marginal;
                     });
    for (const Candidate& cand : candidates) {
      IntervalSet next = placed;
      next.add(j.active_interval(cand.start));
      chosen[index] = cand.start;
      dfs(index + 1, next);
    }
  }
};

}  // namespace

ExactResult exact_optimal_reference(const Instance& instance,
                                    ExactOptions options) {
  FJS_REQUIRE(options.quantum > Time::zero(),
              "exact reference: quantum must be > 0");
  if (instance.empty()) {
    return ExactResult{.span = Time::zero(), .schedule = Schedule(0),
                       .nodes_explored = 0};
  }
  FJS_REQUIRE(instance.is_multiple_of(options.quantum),
              "exact reference: instance is not aligned to the quantum grid");
  GridSearch search(instance, options);
  search.run();

  Schedule schedule(instance.size());
  for (std::size_t i = 0; i < search.order.size(); ++i) {
    schedule.set_start(search.order[i], search.best_starts[i]);
  }
  schedule.validate(instance);
  FJS_CHECK(schedule.span(instance) == search.best_span,
            "exact reference: span mismatch on reconstruction");
  return ExactResult{.span = search.best_span, .schedule = std::move(schedule),
                     .nodes_explored = search.nodes};
}

Time exact_optimal_span_reference(const Instance& instance,
                                  ExactOptions options) {
  return exact_optimal_reference(instance, options).span;
}

}  // namespace fjs
