#include "sim/conformance.h"

#include <sstream>

#include "core/instance.h"
#include "sim/engine.h"
#include "sim/trace_check.h"
#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

struct Probe {
  std::string name;
  Instance instance;
};

std::vector<Probe> battery() {
  std::vector<Probe> probes;
  auto add = [&probes](const std::string& name, InstanceBuilder builder) {
    probes.push_back(Probe{name, builder.build()});
  };

  add("single-rigid-job", InstanceBuilder().add(0, 0, 1));
  add("single-loose-job", InstanceBuilder().add(0, 100, 1));
  add("two-simultaneous-rigid",
      InstanceBuilder().add(0, 0, 2).add(0, 0, 3));
  add("zero-laxity-at-nonzero-time",
      InstanceBuilder().add(5, 5, 1).add(5, 5, 2));
  add("arrival-exactly-at-completion",
      InstanceBuilder().add(0, 0, 1).add(1, 10, 1));
  add("deadline-equals-another-completion",
      InstanceBuilder().add(0, 0, 2).add(0, 2, 1));
  add("shared-deadlines",
      InstanceBuilder().add(0, 3, 1).add(0, 3, 2).add(1, 3, 3));
  add("nested-windows",
      InstanceBuilder().add(0, 10, 1).add(2, 8, 1).add(4, 6, 1));
  add("tiny-and-huge-lengths",
      InstanceBuilder().add(0, 1, 0.001).add(0, 1, 500.0));
  add("burst-of-twenty", [] {
    InstanceBuilder b;
    for (int i = 0; i < 20; ++i) {
      b.add_lax(0.0, static_cast<double>(i), 1.0);
    }
    return b;
  }());
  add("staggered-chain", [] {
    InstanceBuilder b;
    for (int i = 0; i < 10; ++i) {
      b.add_lax(static_cast<double>(i) * 1.5, 2.0, 1.0);
    }
    return b;
  }());
  {
    // Randomized probes with fractional times.
    Rng rng(0xC0FFEE);
    for (int round = 0; round < 4; ++round) {
      InstanceBuilder b;
      for (int i = 0; i < 25; ++i) {
        const double a = rng.uniform_real(0.0, 20.0);
        b.add_lax(a, rng.uniform_real(0.0, 6.0),
                  rng.uniform_real(0.1, 4.0));
      }
      add("random-fractional-" + std::to_string(round), std::move(b));
    }
  }
  return probes;
}

}  // namespace

ConformanceReport run_conformance_suite(
    const std::function<std::unique_ptr<OnlineScheduler>()>& factory,
    bool clairvoyant) {
  ConformanceReport report;
  for (const Probe& probe : battery()) {
    ++report.probes_run;
    try {
      const auto scheduler = factory();
      FJS_REQUIRE(scheduler != nullptr, "factory returned null");
      const SimulationResult result =
          simulate(probe.instance, *scheduler, clairvoyant,
                   /*record_trace=*/true);
      if (!result.schedule.is_valid(result.instance)) {
        report.issues.push_back(
            ConformanceIssue{probe.name, "schedule is invalid"});
        continue;
      }
      const auto violations =
          check_trace(result.instance, result.schedule, result.trace);
      if (!violations.empty()) {
        report.issues.push_back(ConformanceIssue{
            probe.name, "trace violations:\n" +
                            violations_to_string(violations)});
      }
    } catch (const std::exception& e) {
      report.issues.push_back(ConformanceIssue{probe.name, e.what()});
    }
  }
  return report;
}

std::string ConformanceReport::to_string() const {
  std::ostringstream os;
  os << probes_run << " probes, " << issues.size() << " failure(s)\n";
  for (const auto& issue : issues) {
    os << "  [" << issue.probe << "] " << issue.message << '\n';
  }
  return os.str();
}

}  // namespace fjs
