#include "sim/conformance.h"

#include <sstream>

#include "core/instance.h"
#include "sim/engine.h"
#include "sim/trace_check.h"
#include "support/assert.h"
#include "support/rng.h"

namespace fjs {
namespace {

struct Probe {
  std::string name;
  Instance instance;
};

std::vector<Probe> battery() {
  std::vector<Probe> probes;
  auto add = [&probes](const std::string& name, InstanceBuilder builder) {
    probes.push_back(Probe{name, builder.build()});
  };

  add("single-rigid-job", InstanceBuilder().add(0, 0, 1));
  add("single-loose-job", InstanceBuilder().add(0, 100, 1));
  add("two-simultaneous-rigid",
      InstanceBuilder().add(0, 0, 2).add(0, 0, 3));
  add("zero-laxity-at-nonzero-time",
      InstanceBuilder().add(5, 5, 1).add(5, 5, 2));
  add("arrival-exactly-at-completion",
      InstanceBuilder().add(0, 0, 1).add(1, 10, 1));
  add("deadline-equals-another-completion",
      InstanceBuilder().add(0, 0, 2).add(0, 2, 1));
  add("shared-deadlines",
      InstanceBuilder().add(0, 3, 1).add(0, 3, 2).add(1, 3, 3));
  add("nested-windows",
      InstanceBuilder().add(0, 10, 1).add(2, 8, 1).add(4, 6, 1));
  add("tiny-and-huge-lengths",
      InstanceBuilder().add(0, 1, 0.001).add(0, 1, 500.0));
  // Clairvoyant-sensitive probes: identical windows, lengths spread across
  // classification categories — a scheduler that reads length_of at
  // arrival (CDB, Profit, Doubler) takes different branches per job while
  // a non-clairvoyant one cannot tell them apart.
  add("clairvoyant-category-spread",
      InstanceBuilder()
          .add(0, 3, 0.25)
          .add(0, 3, 1)
          .add(0, 3, 2)
          .add(0, 3, 4.5)
          .add(0, 3, 16));
  // A rigid flag followed by arrivals during its run whose lengths
  // straddle any reasonable profitability threshold: the decision to join
  // the flag's interval hinges on the length known at arrival.
  add("clairvoyant-profit-straddle",
      InstanceBuilder()
          .add(0, 0, 4)
          .add(1, 10, 0.5)
          .add(1, 10, 2)
          .add(1.5, 10, 8)
          .add(2, 10, 3.999));
  // Deadline and completion events sharing one timestamp: the first job
  // completes at t=2 exactly when the second's starting deadline fires.
  // Completions outrank deadlines at the same tick, so the scheduler sees
  // on_completion before the forced on_deadline start.
  add("completion-ties-deadline",
      InstanceBuilder().add(0, 0, 2).add(0, 2, 3));
  // The full same-tick pile-up: at t=2 a completion, a deadline, an
  // arrival, and a zero-laxity arrival (its own deadline included) all
  // coincide — one tick exercising the entire kind tie-break chain.
  add("completion-deadline-arrival-pileup",
      InstanceBuilder()
          .add(0, 0, 2)    // completes exactly at t=2
          .add(0, 2, 1)    // starting deadline at t=2
          .add(2, 5, 1)    // arrives at t=2
          .add(2, 2, 1));  // zero-laxity arrival at t=2
  add("burst-of-twenty", [] {
    InstanceBuilder b;
    for (int i = 0; i < 20; ++i) {
      b.add_lax(0.0, static_cast<double>(i), 1.0);
    }
    return b;
  }());
  add("staggered-chain", [] {
    InstanceBuilder b;
    for (int i = 0; i < 10; ++i) {
      b.add_lax(static_cast<double>(i) * 1.5, 2.0, 1.0);
    }
    return b;
  }());
  {
    // Randomized probes with fractional times.
    Rng rng(0xC0FFEE);
    for (int round = 0; round < 4; ++round) {
      InstanceBuilder b;
      for (int i = 0; i < 25; ++i) {
        const double a = rng.uniform_real(0.0, 20.0);
        b.add_lax(a, rng.uniform_real(0.0, 6.0),
                  rng.uniform_real(0.1, 4.0));
      }
      add("random-fractional-" + std::to_string(round), std::move(b));
    }
  }
  return probes;
}

}  // namespace

ConformanceReport run_conformance_suite(
    const std::function<std::unique_ptr<OnlineScheduler>()>& factory,
    bool clairvoyant) {
  ConformanceReport report;
  for (const Probe& probe : battery()) {
    ++report.probes_run;
    try {
      const auto scheduler = factory();
      FJS_REQUIRE(scheduler != nullptr, "factory returned null");
      const SimulationResult result =
          simulate(probe.instance, *scheduler, clairvoyant,
                   /*record_trace=*/true);
      if (!result.schedule.is_valid(result.instance)) {
        report.issues.push_back(
            ConformanceIssue{probe.name, "schedule is invalid"});
        continue;
      }
      const auto violations =
          check_trace(result.instance, result.schedule, result.trace);
      if (!violations.empty()) {
        report.issues.push_back(ConformanceIssue{
            probe.name, "trace violations:\n" +
                            violations_to_string(violations)});
      }
    } catch (const std::exception& e) {
      report.issues.push_back(ConformanceIssue{probe.name, e.what()});
    }
  }
  return report;
}

std::string ConformanceReport::to_string() const {
  std::ostringstream os;
  os << probes_run << " probes, " << issues.size() << " failure(s)\n";
  for (const auto& issue : issues) {
    os << "  [" << issue.probe << "] " << issue.message << '\n';
  }
  return os.str();
}

}  // namespace fjs
