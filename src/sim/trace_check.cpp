#include "sim/trace_check.h"

#include <optional>
#include <sstream>

namespace fjs {
namespace {

struct JobLog {
  std::optional<Time> arrival;
  std::optional<Time> start;
  std::optional<Time> completion;
};

}  // namespace

std::vector<TraceViolation> check_trace(const Instance& instance,
                                        const Schedule& schedule,
                                        const Trace& trace) {
  std::vector<TraceViolation> out;
  auto violate = [&out](std::size_t index, const std::string& message) {
    out.push_back(TraceViolation{index, message});
  };

  std::vector<JobLog> logs(instance.size());
  Time last_time = Time::min();
  // Half-open same-tick semantics ([s, s+p) excludes s+p): within one tick
  // every completion precedes every arrival, and every deferred length
  // decision precedes every completion. Both orders are invariant even
  // under adaptive sources — completion and length-decision events are
  // always enqueued at earlier ticks, so the queue's kind priority fully
  // determines their position in the tick. Tracked independently of the
  // engine's compiled tie-break so a broken queue order is caught here.
  bool tick_saw_arrival = false;
  bool tick_saw_completion = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEntry& e = trace.entry(i);
    if (e.time < last_time) {
      violate(i, "timestamps went backwards");
    }
    if (e.time != last_time) {
      tick_saw_arrival = false;
      tick_saw_completion = false;
    }
    if (e.kind == EventKind::kArrival) {
      tick_saw_arrival = true;
    } else if (e.kind == EventKind::kCompletion) {
      tick_saw_completion = true;
      if (tick_saw_arrival) {
        violate(i,
                "completion processed after an arrival at the same tick "
                "(half-open semantics require completions first)");
      }
    } else if (e.kind == EventKind::kLengthDecision && tick_saw_completion) {
      violate(i,
              "length decision processed after a completion at the same "
              "tick");
    }
    last_time = e.time;
    if (e.job == kInvalidJob) {
      continue;  // timers / wakeups
    }
    if (e.job >= instance.size()) {
      violate(i, "unknown job id in trace");
      continue;
    }
    JobLog& log = logs[e.job];
    const Job& job = instance.job(e.job);
    switch (e.kind) {
      case EventKind::kArrival:
        if (log.arrival.has_value()) {
          violate(i, "duplicate arrival for " + job.to_string());
        }
        if (e.time != job.arrival) {
          violate(i, "arrival time mismatch for " + job.to_string());
        }
        log.arrival = e.time;
        break;
      case EventKind::kStart:
        if (!log.arrival.has_value()) {
          violate(i, "start before arrival event for " + job.to_string());
        }
        if (log.start.has_value()) {
          violate(i, "duplicate start for " + job.to_string());
        }
        if (e.time < job.arrival || e.time > job.deadline) {
          violate(i, "start outside window for " + job.to_string());
        }
        log.start = e.time;
        break;
      case EventKind::kCompletion:
        if (!log.start.has_value()) {
          violate(i, "completion before start for " + job.to_string());
        } else if (e.time != *log.start + job.length) {
          violate(i, "completion time != start + length for " +
                         job.to_string());
        }
        if (log.completion.has_value()) {
          violate(i, "duplicate completion for " + job.to_string());
        }
        log.completion = e.time;
        break;
      case EventKind::kDeadline:
        if (log.start.has_value() && *log.start < e.time) {
          violate(i, "deadline event after job already started: " +
                         job.to_string());
        }
        break;
      case EventKind::kLengthDecision:
      case EventKind::kSchedulerTimer:
      case EventKind::kSourceWakeup:
        break;
    }
  }

  for (JobId id = 0; id < instance.size(); ++id) {
    const JobLog& log = logs[id];
    const Job& job = instance.job(id);
    if (!log.arrival.has_value()) {
      out.push_back(TraceViolation{trace.size(),
                                   "job never arrived: " + job.to_string()});
    }
    if (!log.start.has_value()) {
      out.push_back(TraceViolation{trace.size(),
                                   "job never started: " + job.to_string()});
    } else if (schedule.is_set(id) && schedule.start(id) != *log.start) {
      out.push_back(TraceViolation{
          trace.size(), "schedule start differs from trace start for " +
                            job.to_string()});
    }
    if (!log.completion.has_value()) {
      out.push_back(TraceViolation{
          trace.size(), "job never completed: " + job.to_string()});
    }
  }
  return out;
}

std::string violations_to_string(const std::vector<TraceViolation>& v) {
  std::ostringstream os;
  for (const auto& violation : v) {
    os << '[' << violation.entry_index << "] " << violation.message << '\n';
  }
  return os.str();
}

}  // namespace fjs
