// Length oracles: who decides a job's realized processing length, and when.
//
// In the clairvoyant model lengths are fixed at release. In the
// non-clairvoyant model the paper's adversary may fix a job's length as
// late as it wants (its §3.1 construction decides one time unit after the
// start), as long as the decision is consistent with what the scheduler has
// already observed. The oracle interface captures exactly that power.
#pragma once

#include <optional>

#include "core/job.h"
#include "core/time.h"

namespace fjs {

/// Decides realized processing lengths.
class LengthOracle {
 public:
  virtual ~LengthOracle() = default;

  /// Outcome of a start notification: either the length is fixed now, or
  /// the oracle defers the choice until `decide_at` (> start time).
  struct StartDecision {
    std::optional<Time> length;
    Time decide_at;  ///< Only meaningful when !length.
  };

  /// Job `id` started at `start`. Return the length, or defer. (Named
  /// distinctly from JobSource::on_start so one adversary object can
  /// implement both interfaces.)
  virtual StartDecision at_start(JobId id, Time start) = 0;

  /// Called at `decide_at` for a deferred job; must return a length such
  /// that start + length >= now (the job is still running).
  virtual Time decide(JobId id, Time now) = 0;
};

/// Oracle for jobs whose lengths came with their JobSpec; the engine only
/// consults an oracle for jobs released without a length, so this oracle
/// rejects every call.
class NoDeferralOracle final : public LengthOracle {
 public:
  StartDecision at_start(JobId id, Time start) override;
  Time decide(JobId id, Time now) override;
};

}  // namespace fjs
