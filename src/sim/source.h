// Job sources: where the simulated jobs come from.
//
// A static source replays a fixed Instance. An adaptive source implements
// the paper's adversaries: it observes the online scheduler's actions
// (starts/completions) and chooses future releases in response.
#pragma once

#include <optional>
#include <vector>

#include "core/instance.h"
#include "core/job.h"
#include "core/time.h"

namespace fjs {

/// A job release handed to the engine by a source. `length` is the true
/// processing length if the source knows it up front; std::nullopt defers
/// the decision to the LengthOracle (adaptive non-clairvoyant adversary).
struct JobSpec {
  Time arrival;
  Time deadline;
  std::optional<Time> length;
};

/// What a source may do in response to a notification: release more jobs
/// and/or ask to be woken at a later time.
struct SourceAction {
  std::vector<JobSpec> releases;
  std::optional<Time> wakeup;
};

/// Interface for (possibly adaptive) job sources. All hooks run at a
/// well-defined simulation time; released jobs must have
/// arrival >= that time.
class JobSource {
 public:
  virtual ~JobSource() = default;

  /// Called once before the simulation starts.
  virtual SourceAction begin() = 0;

  /// The online scheduler started job `id` at time `now`.
  virtual SourceAction on_start(JobId id, Time now) {
    (void)id;
    (void)now;
    return {};
  }

  /// Job `id` completed at time `now` (its realized length is known).
  virtual SourceAction on_complete(JobId id, Time now) {
    (void)id;
    (void)now;
    return {};
  }

  /// A wakeup requested via SourceAction::wakeup fired.
  virtual SourceAction on_wakeup(Time now) {
    (void)now;
    return {};
  }
};

/// Replays the jobs of a fixed Instance (lengths known up front).
class StaticSource final : public JobSource {
 public:
  explicit StaticSource(const Instance& instance);
  /// Same replay over a non-owning view (e.g. a miner scratch buffer).
  /// The view only needs to stay alive for the constructor call.
  explicit StaticSource(InstanceView view);

  SourceAction begin() override;

 private:
  std::vector<JobSpec> specs_;
};

}  // namespace fjs
