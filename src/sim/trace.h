// Execution traces: an ordered record of everything the engine processed.
// Used by tests to pin event ordering and by the adversary-explorer example
// to narrate runs.
#pragma once

#include <string>
#include <vector>

#include "sim/events.h"

namespace fjs {

struct TraceEntry {
  Time time;
  EventKind kind = EventKind::kArrival;
  JobId job = kInvalidJob;
  /// For kCompletion: realized length; for kSchedulerTimer: the tag.
  std::int64_t detail = 0;

  std::string to_string() const;
};

/// Append-only event log. Recording is optional (see EngineOptions).
class Trace {
 public:
  void record(const TraceEntry& entry) { entries_.push_back(entry); }
  void clear() { entries_.clear(); }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const TraceEntry& entry(std::size_t i) const;
  const std::vector<TraceEntry>& entries() const { return entries_; }

  /// Entries of a given kind, in order.
  std::vector<TraceEntry> filter(EventKind kind) const;

  std::string to_string() const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace fjs
