// The online scheduler interface and the context the engine exposes to it.
//
// Clairvoyance is an engine-enforced capability: in non-clairvoyant runs
// SchedulerContext::length_of throws, so a scheduler cannot accidentally
// peek at processing lengths the paper's model hides.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/job.h"
#include "core/time.h"
#include "support/assert.h"

namespace fjs {

/// Helpers for packing scheduler state into the opaque 64-bit words of
/// OnlineScheduler::save_state / load_state. Times round-trip through
/// two's complement.
namespace snapshot {
inline std::uint64_t pack_time(Time t) {
  return static_cast<std::uint64_t>(t.ticks());
}
inline Time unpack_time(std::uint64_t w) {
  return Time(static_cast<std::int64_t>(w));
}
}  // namespace snapshot

/// What a scheduler may know about a job. The processing length is not
/// part of the view; it must be requested via SchedulerContext::length_of,
/// which is gated on the clairvoyance mode.
struct JobView {
  JobId id = kInvalidJob;
  Time arrival;
  Time deadline;

  Time laxity() const { return deadline - arrival; }
};

/// Engine-provided capabilities available inside scheduler callbacks.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  /// Current simulation time.
  virtual Time now() const = 0;

  /// True iff processing lengths are revealed at arrival (§4 model).
  virtual bool clairvoyant() const = 0;

  /// Arrival/deadline of any job that has arrived.
  virtual JobView view(JobId id) const = 0;

  /// Processing length of an arrived job. Throws AssertionError in
  /// non-clairvoyant mode.
  virtual Time length_of(JobId id) const = 0;

  /// True iff the job has arrived and not yet started. O(1) — the check a
  /// timer callback needs to stay robust against a job force-started by
  /// on_deadline at the same event time (deadline events outrank timers).
  virtual bool is_pending(JobId id) const = 0;

  /// Jobs that have arrived but not yet started, in arrival order.
  virtual const std::vector<JobId>& pending() const = 0;

  /// Jobs currently running, in start order.
  virtual const std::vector<JobId>& running() const = 0;

  /// Starts a pending job at the current time. The engine validates the
  /// start window and handles completion scheduling.
  virtual void start_job(JobId id) = 0;

  /// Requests an on_timer callback at time t >= now() with the given tag.
  virtual void set_timer(Time t, std::uint64_t tag) = 0;
};

/// Base class for online schedulers. The engine calls the hooks in
/// deterministic event order (see EventKind); a scheduler reacts by calling
/// SchedulerContext::start_job.
///
/// Contract: after on_deadline(ctx, id) returns, job `id` must have been
/// started (by this callback or an earlier one) — FJS requires every job to
/// start by its starting deadline. The engine throws otherwise.
class OnlineScheduler {
 public:
  virtual ~OnlineScheduler() = default;

  virtual std::string name() const = 0;

  /// True for schedulers that read length_of (CDB, Profit, Doubler).
  virtual bool requires_clairvoyance() const { return false; }

  /// A new job arrived (and is pending).
  virtual void on_arrival(SchedulerContext& ctx, JobId id) = 0;

  /// A pending job reached its starting deadline: start it now.
  virtual void on_deadline(SchedulerContext& ctx, JobId id) = 0;

  /// A running job completed.
  virtual void on_completion(SchedulerContext& ctx, JobId id) {
    (void)ctx;
    (void)id;
  }

  /// A timer requested via set_timer fired.
  virtual void on_timer(SchedulerContext& ctx, std::uint64_t tag) {
    (void)ctx;
    (void)tag;
  }

  /// Clears all per-run state so the object can drive a fresh simulation.
  virtual void reset() {}

  /// Serializes ALL mutable per-run state into `out` (cleared first) as
  /// opaque 64-bit words — everything reset() would clear, plus any RNG
  /// position. Immutable configuration (k, theta, seeds) is NOT included;
  /// a snapshot is only valid on the scheduler object (or an identically
  /// configured one) that produced it. The default implementation is for
  /// stateless schedulers: it saves nothing.
  ///
  /// This is the scheduler half of engine checkpointing (see
  /// EngineCheckpoint): save_state at an event boundary plus load_state
  /// later must reproduce the uninterrupted run decision-for-decision.
  virtual void save_state(std::vector<std::uint64_t>& out) const {
    out.clear();
  }

  /// Restores state produced by save_state, REPLACING all mutable state
  /// (a load_state is a reset to the captured position). The default
  /// matches the stateless save_state and rejects non-empty payloads, so
  /// a stateful scheduler that forgets to override both halves fails
  /// loudly instead of silently resuming from a half-stale state.
  virtual void load_state(const std::uint64_t* data, std::size_t n) {
    (void)data;
    FJS_REQUIRE(n == 0, "scheduler: unexpected snapshot payload");
  }
};

}  // namespace fjs
