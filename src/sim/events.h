// Event types and deterministic same-tick ordering for the simulator.
#pragma once

#include <cstdint>
#include <string>

#include "core/job.h"
#include "core/time.h"

namespace fjs {

/// Same-tick processing order (lower value first). The order encodes the
/// paper's half-open interval semantics:
///  * LengthDecision before Completion: a deferred length decision that
///    resolves "this job completes right now" must join this tick's
///    completion batch;
///  * Completion before Arrival: a job arriving exactly when a Batch+ flag
///    completes belongs to the NEXT iteration ([d, d+p) excludes d+p);
///  * Arrival before Deadline: a zero-laxity job arrives and immediately
///    hits its starting deadline within the same tick.
enum class EventKind : std::uint8_t {
  kLengthDecision = 0,
  kCompletion = 1,
  kArrival = 2,
  kDeadline = 3,
  kSchedulerTimer = 4,
  kSourceWakeup = 5,
  /// Trace-only marker for job starts; never enqueued.
  kStart = 6,
};

std::string to_string(EventKind kind);

/// Same-tick priority used by every event queue and merge in the engine
/// (lower rank pops first). Kept as a single function so the heap, the
/// staged-arrival merge, and any external replayer cannot disagree.
///
/// FJS_FUZZ_PLANTED_TIEBREAK_BUG deliberately swaps the
/// completion/arrival priority — a job arriving exactly at a completion
/// would join the CURRENT iteration, violating the half-open interval
/// semantics. The flag exists only to validate the fuzzing harness
/// end-to-end (the harness must catch the planted bug and shrink it);
/// never enable it for real experiments.
constexpr int same_tick_rank(EventKind kind) {
#ifdef FJS_FUZZ_PLANTED_TIEBREAK_BUG
  if (kind == EventKind::kCompletion) {
    return static_cast<int>(EventKind::kArrival);
  }
  if (kind == EventKind::kArrival) {
    return static_cast<int>(EventKind::kCompletion);
  }
#endif
  return static_cast<int>(kind);
}

struct Event {
  // Field order packs the struct into 32 bytes (wide members first); events
  // are copied constantly on the engine's hot path.
  Time time;
  /// FIFO tie-break for identical (time, kind).
  std::uint64_t seq = 0;
  /// User data for scheduler timers.
  std::uint64_t tag = 0;
  JobId job = kInvalidJob;
  EventKind kind = EventKind::kArrival;
};

/// Min-heap ordering: earliest time, then kind, then insertion order.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) {
      return a.time > b.time;
    }
    if (a.kind != b.kind) {
      return same_tick_rank(a.kind) > same_tick_rank(b.kind);
    }
    return a.seq > b.seq;
  }
};

}  // namespace fjs
