// Discrete-event simulation engine for online FJS.
//
// The engine owns the event queue and the job lifecycle
// (released → pending → running → done), enforces the model's rules
// (start window, clairvoyance gating, "every job starts by its starting
// deadline"), and mediates between three pluggable parties:
//   * the JobSource (possibly an adaptive adversary releasing jobs in
//     response to observed scheduler actions),
//   * the LengthOracle (possibly an adaptive adversary fixing processing
//     lengths after starts),
//   * the OnlineScheduler under test.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "sim/events.h"
#include "sim/length_oracle.h"
#include "sim/scheduler.h"
#include "sim/source.h"
#include "sim/trace.h"

namespace fjs {

struct EngineOptions {
  /// Reveal processing lengths to the scheduler at arrival (§4 model).
  bool clairvoyant = false;
  /// Record a full event trace in the result.
  bool record_trace = false;
  /// Hard cap on processed events (runaway-adversary guard).
  std::size_t max_events = 50'000'000;
};

struct SimulationResult {
  /// The realized instance: all released jobs with their realized lengths,
  /// ids in release order.
  Instance instance;
  /// Start times chosen by the online scheduler (complete and valid).
  Schedule schedule;
  Trace trace;
  std::size_t event_count = 0;

  /// Convenience: span of the online schedule.
  Time span() const { return schedule.span(instance); }
};

/// Runs one simulation. The engine is single-use: construct, run(), read
/// the result. Scheduler state is reset() before the run.
class Engine {
 public:
  Engine(JobSource& source, LengthOracle& oracle, OnlineScheduler& scheduler,
         EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimulationResult run();

 private:
  class Context;
  friend class Context;

  enum class JobState : std::uint8_t { kPending, kRunning, kDone };

  struct JobRecord {
    Job job;  ///< length is only meaningful once length_known
    JobState state = JobState::kPending;
    bool length_known = false;
    Time start;
  };

  void apply(const SourceAction& action);
  void release(const JobSpec& spec);
  void push(Event event);
  void start_job(JobId id);
  void process(const Event& event);
  void trace_event(Time t, EventKind kind, JobId job, std::int64_t detail);
  JobRecord& record(JobId id);

  JobSource& source_;
  LengthOracle& oracle_;
  OnlineScheduler& scheduler_;
  EngineOptions options_;

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  std::uint64_t next_seq_ = 0;
  Time now_;
  bool started_ = false;

  std::vector<JobRecord> jobs_;
  std::vector<JobId> pending_;  ///< arrival order
  std::vector<JobId> running_;  ///< start order
  Trace trace_;
  std::size_t event_count_ = 0;

  std::unique_ptr<Context> context_;
};

/// Convenience wrapper: simulate a fixed instance. The returned result's
/// instance has jobs in arrival order of `instance` (re-indexed); its
/// schedule is validated before returning.
SimulationResult simulate(const Instance& instance, OnlineScheduler& scheduler,
                          bool clairvoyant, bool record_trace = false);

/// Like simulate(), but returns the span only.
Time simulate_span(const Instance& instance, OnlineScheduler& scheduler,
                   bool clairvoyant);

}  // namespace fjs
