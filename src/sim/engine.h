// Discrete-event simulation engine for online FJS.
//
// The engine owns the event queue and the job lifecycle
// (released → pending → running → done), enforces the model's rules
// (start window, clairvoyance gating, "every job starts by its starting
// deadline"), and mediates between three pluggable parties:
//   * the JobSource (possibly an adaptive adversary releasing jobs in
//     response to observed scheduler actions),
//   * the LengthOracle (possibly an adaptive adversary fixing processing
//     lengths after starts),
//   * the OnlineScheduler under test.
//
// Throughput notes: pending/running membership uses per-job slot indices
// with swap-and-pop removal (O(1) per transition); the arrival-order and
// start-order vectors handed to schedulers are append-ordered views
// compacted lazily (state filter, never a sort), only when a scheduler
// asks after a removal. Arrival events whose
// release times come in nondecreasing order (every static replay) are
// staged in a FIFO vector and merged against the heap at pop time, so the
// heap only ever holds the few outstanding deadline/completion/timer
// events instead of every future arrival — the difference between O(log n)
// on tens of entries and on tens of thousands. The heap itself is 4-ary
// over a plain vector so its storage can be reserved and recycled. The
// running span is maintained incrementally (SpanTracker), so span queries
// never rebuild the interval union from scratch.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "core/span_tracker.h"
#include "sim/events.h"
#include "sim/length_oracle.h"
#include "sim/scheduler.h"
#include "sim/source.h"
#include "sim/trace.h"
#include "support/object_pool.h"

namespace fjs {

struct EngineOptions {
  /// Reveal processing lengths to the scheduler at arrival (§4 model).
  bool clairvoyant = false;
  /// Record a full event trace in the result.
  bool record_trace = false;
  /// Hard cap on processed events (runaway-adversary guard).
  std::size_t max_events = 50'000'000;
  /// Expected number of released jobs; pre-sizes job/event/list storage so
  /// large static runs don't pay vector growth. 0 = no pre-sizing.
  std::size_t reserve_jobs = 0;
};

struct SimulationResult {
  /// The realized instance: all released jobs with their realized lengths,
  /// ids in release order.
  Instance instance;
  /// Start times chosen by the online scheduler (complete and valid).
  Schedule schedule;
  Trace trace;
  std::size_t event_count = 0;
  /// Span maintained incrementally during the run; always equals
  /// schedule.span(instance).
  Time realized_span;

  /// Convenience: span of the online schedule (O(1), tracked by the run).
  Time span() const { return realized_span; }
};

class Engine;

namespace detail {

enum class EngineJobState : std::uint8_t { kPending, kRunning, kDone };

/// Internal per-job state. Exposed at namespace scope only so
/// EngineWorkspace can recycle the storage; not a public API.
struct EngineJobRecord {
  Job job;  ///< length is only meaningful once length_known
  EngineJobState state = EngineJobState::kPending;
  bool length_known = false;
  Time start;
  /// Index of this job inside pending_ (while pending) or running_
  /// (while running); meaningless otherwise.
  std::uint32_t slot = 0;
  /// Monotone rank assigned at arrival (while pending) and reassigned at
  /// start (while running); the sorted views order by it.
  std::uint64_t order = 0;
};

/// Engine-backed implementation of the scheduler-facing context. Held by
/// value inside Engine (it is just a vtable pointer plus a back-reference)
/// so constructing an engine performs no allocation; methods live in
/// engine.cpp.
class EngineContext final : public SchedulerContext {
 public:
  explicit EngineContext(Engine& engine) : engine_(engine) {}

  Time now() const override;
  bool clairvoyant() const override;
  JobView view(JobId id) const override;
  Time length_of(JobId id) const override;
  bool is_pending(JobId id) const override;
  const std::vector<JobId>& pending() const override;
  const std::vector<JobId>& running() const override;
  void start_job(JobId id) override;
  void set_timer(Time t, std::uint64_t tag) override;

 private:
  Engine& engine_;
};

}  // namespace detail

/// A captured mid-run engine state: everything Engine::drive mutates, plus
/// the scheduler's opaque snapshot (OnlineScheduler::save_state). A
/// checkpoint is taken immediately BEFORE the staged arrival at index
/// `staged_head` is consumed, so it represents "all events strictly
/// preceding arrival #staged_head have been processed".
///
/// Restoring (Engine::resume_static) replays the rest of a run — possibly
/// against a MUTATED arrival suffix — without re-simulating the shared
/// prefix. Storage is plain vectors, so capture/restore are copy-assigns
/// that reuse capacity: zero steady-state allocations once warm (verified
/// by the FJS_COUNT_ALLOCS gate in bench E9).
struct EngineCheckpoint {
  bool valid = false;
  std::size_t staged_head = 0;  ///< staged arrival index about to process
  std::uint64_t next_seq = 0;
  std::uint64_t next_order = 0;
  Time now;                     ///< time of the last PROCESSED event
  std::size_t done_count = 0;
  std::size_t event_count = 0;
  std::size_t trace_len = 0;    ///< prefix length when tracing (see run())
  bool pending_view_dirty = false;
  bool running_view_dirty = false;
  std::vector<detail::EngineJobRecord> jobs;
  std::vector<Event> heap;
  std::vector<JobId> pending;
  std::vector<JobId> running;
  std::vector<JobId> pending_view;
  std::vector<JobId> running_view;
  SpanTracker span;
  std::vector<std::uint64_t> scheduler_state;
};

/// A reusable set of checkpoints strided across one static timeline,
/// captured by Engine::capture_checkpoints during a run and consulted by
/// the next run over a mutated version of the same timeline (see
/// PortfolioRunner's prefix replay). Slot storage persists across runs, so
/// steady-state capture allocates nothing.
class EngineCheckpointSeries {
 public:
  static constexpr std::size_t kDefaultSlots = 4;

  /// Plans capture points for an `arrivals`-event timeline: up to
  /// `max_slots` staged indices strided evenly across (0, arrivals) —
  /// index 0 is never planned (an empty-prefix checkpoint is just a full
  /// replay). Keeps existing slots when the planned indices are unchanged
  /// (the common mutate-in-place loop); otherwise invalidates everything.
  void plan(std::size_t arrivals, std::size_t max_slots = kDefaultSlots);

  std::size_t size() const { return capture_indices_.size(); }
  std::size_t capture_index(std::size_t slot) const {
    return capture_indices_[slot];
  }
  const EngineCheckpoint& slot(std::size_t i) const { return slots_[i]; }

  /// Deepest slot usable for a run whose prepared timeline first differs
  /// from the captured one at staged index `k_diff`, with `t_affected` the
  /// earliest time either version of that arrival occupies. A slot
  /// qualifies iff its whole captured prefix is unaffected: capture index
  /// <= k_diff AND every processed event strictly predates t_affected.
  /// Returns -1 if none qualifies (full replay).
  std::ptrdiff_t deepest_valid(std::size_t k_diff, Time t_affected) const;

  /// Marks slots_[first..] invalid (their prefix no longer matches the
  /// lineage base).
  void invalidate_from(std::size_t first);

  /// Sets the capture cursor: the next run captures slots_[first..] as it
  /// crosses their staged indices (earlier slots are kept as-is).
  void arm(std::size_t first) { cursor_ = first; }

 private:
  friend class Engine;
  std::vector<std::size_t> capture_indices_;
  std::vector<EngineCheckpoint> slots_;
  std::size_t cursor_ = 0;
};

/// Recyclable buffer set for running many simulations without paying
/// per-run allocation. Opaque: hand it to consecutive Engine constructions
/// (one at a time) and each run returns its storage here on completion.
/// Not thread-safe — use one workspace per thread.
class EngineWorkspace {
 public:
  EngineWorkspace() = default;
  EngineWorkspace(const EngineWorkspace&) = delete;
  EngineWorkspace& operator=(const EngineWorkspace&) = delete;

 private:
  friend class Engine;
  std::vector<detail::EngineJobRecord> jobs_;
  std::vector<Event> heap_;
  std::vector<Event> staged_;
  std::vector<JobId> pending_;
  std::vector<JobId> running_;
  std::vector<JobId> pending_view_;
  std::vector<JobId> running_view_;
  SpanTracker span_;
};

/// Runs one simulation. The engine is single-use: construct, run() (or
/// run_span()), read the result. Scheduler state is reset() before the run.
class Engine {
 public:
  /// If `recycle` is non-null, the engine adopts the workspace's buffers
  /// and returns them (capacity intact) when the run completes.
  Engine(JobSource& source, LengthOracle& oracle, OnlineScheduler& scheduler,
         EngineOptions options = {}, EngineWorkspace* recycle = nullptr);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimulationResult run();

  /// Fast path for sweeps: runs the simulation and returns only the span,
  /// skipping the realized instance/schedule construction and the
  /// (redundant — every start was already window-checked) validation pass.
  /// If `starts_out` is non-null it is resized to the released job count
  /// and filled with the chosen start times, indexed by engine job id
  /// (release order) — the cheap way to recover the online schedule
  /// without materializing an Instance/Schedule pair.
  Time run_span(std::vector<Time>* starts_out = nullptr);

  /// Portfolio fast path: installs a prebuilt job-record template and the
  /// matching staged arrival events (seq 0..n-1, nondecreasing times)
  /// exactly as a StaticSource release stream would have produced them,
  /// without consulting a source. Both vectors are copied into recycled
  /// storage — zero allocations once the workspace is warm. Must be called
  /// before run()/run_span(), with an empty engine, and the run's
  /// JobSource must release nothing (use a null source). See
  /// sim/portfolio.h for the public wrapper.
  void preload_static(const std::vector<detail::EngineJobRecord>& records,
                      const std::vector<Event>& staged);

  /// Like preload_static, but resumes from `ckpt` instead of the start:
  /// engine state is restored wholesale, the scheduler is load_state()d,
  /// and only arrivals from ckpt.staged_head on are replayed. `records` /
  /// `staged` describe the FULL (possibly mutated) timeline; the caller
  /// guarantees the mutation does not touch the checkpoint's prefix (see
  /// EngineCheckpointSeries::deepest_valid). Requires the same job count
  /// as the captured run. drive() then skips scheduler reset and
  /// source.begin() — the checkpoint already encodes them.
  void resume_static(const EngineCheckpoint& ckpt,
                     const std::vector<detail::EngineJobRecord>& records,
                     const std::vector<Event>& staged);

  /// Registers a checkpoint series to capture into during the coming run
  /// (armed slots only; see EngineCheckpointSeries::arm). The series must
  /// outlive the run. Pass nullptr to disable.
  void capture_checkpoints(EngineCheckpointSeries* series) {
    series_ = series;
  }

 private:
  friend class detail::EngineContext;

  using JobRecord = detail::EngineJobRecord;
  using JobState = detail::EngineJobState;

  void adopt_workspace();
  void recycle_workspace();
  void apply(const SourceAction& action);
  void release(const JobSpec& spec);
  void push(Event event);
  void heap_insert(const Event& event);
  Event pop_event();
  void maybe_capture();
  void capture_into(EngineCheckpoint& ckpt);
  void start_job(JobId id);
  void process(const Event& event);
  void drive();
  void trace_event(Time t, EventKind kind, JobId job, std::int64_t detail);
  JobRecord& record(JobId id);

  /// O(1) membership update helpers (swap-and-pop + slot fixup).
  void list_push(std::vector<JobId>& list, std::vector<JobId>& view, JobId id);
  void list_remove(std::vector<JobId>& list, bool& view_dirty, JobId id);

  /// Lazily compacted views handed to schedulers (arrival / start order).
  const std::vector<JobId>& pending_view();
  const std::vector<JobId>& running_view();
  void compact_view(std::vector<JobId>& view, JobState wanted) const;

  JobSource& source_;
  LengthOracle& oracle_;
  OnlineScheduler& scheduler_;
  EngineOptions options_;
  EngineWorkspace* workspace_;

  /// 4-ary min-heap on (time, kind, seq) — see events.h for the ordering.
  std::vector<Event> heap_;
  /// Arrival events released in nondecreasing time order, consumed from
  /// staged_[staged_head_..]; merged against heap_ at pop time.
  std::vector<Event> staged_;
  std::size_t staged_head_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_order_ = 0;
  Time now_;
  bool started_ = false;
  bool resumed_ = false;  ///< resume_static: drive() skips reset/begin
  EngineCheckpointSeries* series_ = nullptr;

  std::vector<JobRecord> jobs_;
  std::vector<JobId> pending_;   ///< unordered storage, slot-indexed
  std::vector<JobId> running_;   ///< unordered storage, slot-indexed
  std::vector<JobId> pending_view_;  ///< arrival order, rebuilt on demand
  std::vector<JobId> running_view_;  ///< start order, rebuilt on demand
  bool pending_view_dirty_ = false;
  bool running_view_dirty_ = false;
  std::size_t done_count_ = 0;
  SpanTracker span_;
  Trace trace_;
  std::size_t event_count_ = 0;
  std::size_t heap_high_water_ = 0;  ///< per-run peak heap size (telemetry)

  detail::EngineContext context_;
};

/// Convenience wrapper: simulate a fixed instance. The returned result's
/// instance has jobs in arrival order of `instance` (re-indexed); its
/// schedule is validated before returning. Reuses a thread-local
/// EngineWorkspace, so back-to-back calls don't pay per-run allocation.
SimulationResult simulate(const Instance& instance, OnlineScheduler& scheduler,
                          bool clairvoyant, bool record_trace = false);

/// Like simulate(), but returns the span only, via Engine::run_span() —
/// no trace, no result construction, no second validation pass.
Time simulate_span(const Instance& instance, OnlineScheduler& scheduler,
                   bool clairvoyant);

/// Per-thread free-list of engine workspaces. Call sites that used to
/// hand-thread an EngineWorkspace through their loops acquire() a lease
/// instead; the workspace returns to the calling thread's list when the
/// lease dies, capacity ("warmth") intact.
using EngineWorkspacePool = ObjectPool<EngineWorkspace>;
EngineWorkspacePool& engine_workspace_pool();

}  // namespace fjs
