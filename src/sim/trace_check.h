// Independent trace validator: replays a recorded simulation trace and
// checks online-model invariants WITHOUT trusting the engine's internal
// bookkeeping. Used by property tests as a second pair of eyes and by
// users debugging custom schedulers/adversaries.
#pragma once

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/schedule.h"
#include "sim/trace.h"

namespace fjs {

struct TraceViolation {
  std::size_t entry_index = 0;
  std::string message;
};

/// Checks, over the recorded trace:
///  * timestamps are non-decreasing;
///  * same-tick half-open semantics: completions before arrivals, length
///    decisions before completions (checked against the paper's canonical
///    order, independent of the engine's compiled tie-break);
///  * every job arrives exactly once, starts exactly once within
///    [arrival, deadline], completes exactly once at start + length;
///  * no deadline event for an already-started job carries a start;
///  * the schedule's recorded starts match the trace's start events.
/// Returns all violations (empty = consistent).
std::vector<TraceViolation> check_trace(const Instance& instance,
                                        const Schedule& schedule,
                                        const Trace& trace);

/// Convenience: formats violations one per line.
std::string violations_to_string(const std::vector<TraceViolation>& v);

}  // namespace fjs
