#include "sim/source.h"

namespace fjs {

StaticSource::StaticSource(const Instance& instance) {
  specs_.reserve(instance.size());
  // Release in arrival order so engine job ids follow arrival order; ids of
  // the realized instance then match ids_by_arrival of the input.
  for (const JobId id : instance.ids_by_arrival()) {
    const Job& j = instance.job(id);
    specs_.push_back(
        JobSpec{.arrival = j.arrival, .deadline = j.deadline, .length = j.length});
  }
}

SourceAction StaticSource::begin() {
  SourceAction action;
  action.releases = specs_;
  return action;
}

}  // namespace fjs
