#include "sim/source.h"

#include <algorithm>

namespace fjs {

StaticSource::StaticSource(const Instance& instance)
    : StaticSource(instance.view()) {}

StaticSource::StaticSource(InstanceView view) {
  specs_.reserve(view.size());
  // Release in arrival order so engine job ids follow arrival order; ids of
  // the realized instance then match ids_by_arrival of the input.
  if (view.sorted_by_arrival()) {
    // Already in (arrival, id) order — skip the O(n log n) id sort that
    // every generated workload would otherwise pay per simulation.
    for (std::size_t i = 0; i < view.size(); ++i) {
      const JobId id = static_cast<JobId>(i);
      specs_.push_back(JobSpec{.arrival = view.arrival(id),
                               .deadline = view.deadline(id),
                               .length = view.length(id)});
    }
    return;
  }
  for (const JobId id : view.ids_by_arrival()) {
    specs_.push_back(JobSpec{.arrival = view.arrival(id),
                             .deadline = view.deadline(id),
                             .length = view.length(id)});
  }
}

SourceAction StaticSource::begin() {
  // begin() runs once per simulation and the source is single-use (one
  // engine per source), so hand the specs over without copying.
  SourceAction action;
  action.releases = std::move(specs_);
  return action;
}

}  // namespace fjs
