#include "sim/source.h"

#include <algorithm>

namespace fjs {

StaticSource::StaticSource(const Instance& instance) {
  specs_.reserve(instance.size());
  // Release in arrival order so engine job ids follow arrival order; ids of
  // the realized instance then match ids_by_arrival of the input.
  const std::vector<Job>& jobs = instance.jobs();
  const bool sorted =
      std::is_sorted(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
        return a.arrival < b.arrival;
      });
  if (sorted) {
    // Already in (arrival, id) order — skip the O(n log n) id sort that
    // every generated workload would otherwise pay per simulation.
    for (const Job& j : jobs) {
      specs_.push_back(JobSpec{
          .arrival = j.arrival, .deadline = j.deadline, .length = j.length});
    }
    return;
  }
  for (const JobId id : instance.ids_by_arrival()) {
    const Job& j = instance.job(id);
    specs_.push_back(
        JobSpec{.arrival = j.arrival, .deadline = j.deadline, .length = j.length});
  }
}

SourceAction StaticSource::begin() {
  // begin() runs once per simulation and the source is single-use (one
  // engine per source), so hand the specs over without copying.
  SourceAction action;
  action.releases = std::move(specs_);
  return action;
}

}  // namespace fjs
