#include "sim/length_oracle.h"

#include "support/assert.h"

namespace fjs {

LengthOracle::StartDecision NoDeferralOracle::at_start(JobId /*id*/,
                                                       Time /*start*/) {
  FJS_UNREACHABLE("NoDeferralOracle consulted for a length-less job");
}

Time NoDeferralOracle::decide(JobId /*id*/, Time /*now*/) {
  FJS_UNREACHABLE("NoDeferralOracle::decide called");
}

}  // namespace fjs
