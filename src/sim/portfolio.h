// Batched portfolio simulation kernel: evaluate one instance under many
// schedulers while paying the per-instance setup once.
//
// Every heavy consumer in the repo (the worst-case miner, the fuzz
// oracles, the ratio sweeps) asks "what does scheduler S do on instance
// I?" for several S per I. A plain simulate() call re-derives the arrival
// order, re-builds a StaticSource release vector, and allocates a fresh
// scheduler context for every run. The kernel instead *prepares* the
// instance once — job-record template plus the staged arrival FIFO, in
// exactly the order and seq numbering a StaticSource replay would produce
// — and replays the prepared timeline for each portfolio entry through
// Engine::preload_static. The replay is bit-identical to the classic path
// (same events, same seqs, same tie-breaking), which the portfolio
// determinism tests pin down.
//
// The span-only mode (run_spans/run_span) skips Instance/Schedule
// materialization entirely and, with a warm workspace, performs ZERO heap
// allocations per simulation — asserted under FJS_COUNT_ALLOCS (see
// support/alloc_counter.h and docs/PERF.md).
//
// Adaptive adversaries: a source or oracle factory in PortfolioOptions
// marks the instance as adaptive — the realized timeline then depends on
// the scheduler's own actions, so sharing a prepared timeline would be
// unsound. The runner detects this and automatically falls back to
// per-run sources/oracles (shared_timeline() reports which path ran).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <typeinfo>
#include <vector>

#include "sim/engine.h"

namespace fjs {

/// One scheduler in the portfolio. Non-owning: the scheduler must outlive
/// the run and is reset() by the engine before each replay.
struct PortfolioEntry {
  OnlineScheduler* scheduler = nullptr;
  bool clairvoyant = false;
};

struct PortfolioOptions {
  /// Record a full event trace in full-result mode (ignored by span mode).
  bool record_trace = false;
  /// Adaptive-adversary gate: when either factory is set the prepared
  /// timeline is NOT shared; every entry gets a fresh source/oracle pair
  /// built by the factories (a missing factory falls back to
  /// StaticSource / NoDeferralOracle).
  std::function<std::unique_ptr<JobSource>(const Instance&)> source_factory;
  std::function<std::unique_ptr<LengthOracle>(const Instance&)> oracle_factory;

  bool adaptive() const {
    return static_cast<bool>(source_factory) ||
           static_cast<bool>(oracle_factory);
  }
};

/// An instance lowered to the engine's internal replay format: the
/// EngineJobRecord template and the staged arrival events a StaticSource
/// release stream would have produced (ids in arrival order, seq 0..n-1).
/// prepare() reuses internal storage, so a PreparedInstance that cycles
/// through many same-sized instances stops allocating.
class PreparedInstance {
 public:
  PreparedInstance() = default;

  /// Validates the jobs (same checks as Engine release) and rebuilds the
  /// replay buffers for `instance`.
  void prepare(const Instance& instance) { prepare(instance.view()); }

  /// Same lowering over a non-owning view (e.g. the miner's mutation
  /// scratch table) — no Instance is materialized. The view only needs to
  /// stay alive for this call; the replay buffers copy everything out.
  void prepare(InstanceView view);

  std::size_t size() const { return records_.size(); }
  const std::vector<detail::EngineJobRecord>& records() const {
    return records_;
  }
  const std::vector<Event>& staged() const { return staged_; }
  /// Maps engine job id (release order) back to the prepared instance's
  /// job id; identity when the instance was already arrival-sorted.
  const std::vector<JobId>& original_ids() const { return original_ids_; }

 private:
  std::vector<detail::EngineJobRecord> records_;
  std::vector<Event> staged_;
  std::vector<JobId> original_ids_;
  std::vector<JobId> sort_scratch_;  ///< arrival-sort ids, capacity reused
};

/// Span-only portfolio result (convenience-function form).
struct PortfolioSpanResult {
  std::vector<Time> spans;        ///< one per portfolio entry, same order
  bool shared_timeline = false;   ///< prepared fast path used (not adaptive)
};

/// Counters for the checkpointed prefix-replay cache (see
/// PortfolioRunner::enable_prefix_replay). A "hit" resumes a run from the
/// deepest valid checkpoint instead of replaying from t=0; a "miss" is a
/// prefix-eligible run that had to replay in full (no valid checkpoint for
/// the mutated timeline). Adaptive runs and disabled entries count as
/// neither.
struct PrefixReplayStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  /// Staged arrivals NOT re-processed thanks to resumes (sum of the
  /// restored checkpoints' staged heads); hits > 0 implies > 0.
  std::size_t arrivals_skipped = 0;
  /// Total events (arrivals, deadlines, completions, timers) not
  /// re-processed thanks to resumes.
  std::size_t events_skipped = 0;
};

/// Replays one instance under a portfolio of schedulers. Holds the
/// prepared timeline, a leased engine workspace, and scratch buffers, so
/// a long-lived runner reaches a zero-allocation steady state in span
/// mode. Not thread-safe: use one runner per thread.
class PortfolioRunner {
 public:
  PortfolioRunner() : workspace_(engine_workspace_pool().acquire()) {}

  /// Span-only batch: spans_out[i] is entry i's span on `instance`.
  /// Returns true when the shared prepared timeline was used (always,
  /// unless options carry adaptive factories).
  bool run_spans(const Instance& instance,
                 std::span<const PortfolioEntry> entries,
                 std::vector<Time>& spans_out,
                 const PortfolioOptions& options = {});

  /// View form of the span batch. Shared-timeline only: the adaptive
  /// factories need an owning Instance, so options must not carry any.
  void run_spans(InstanceView view, std::span<const PortfolioEntry> entries,
                 std::vector<Time>& spans_out);

  /// Single-entry span fast path. If `starts_out` is non-null it is
  /// filled with the scheduler's chosen start times indexed by the
  /// instance's own job ids — the online schedule without materializing a
  /// Schedule. Requires the non-adaptive (shared-timeline) path.
  ///
  /// `earliest_affected_hint`: callers that know how this instance differs
  /// from the previous one handed to this runner (e.g. the miner's
  /// single-job mutations) may pass the earliest event time the change can
  /// influence; prefix replay takes the min of the hint and its own
  /// timeline diff when choosing the deepest valid checkpoint. Time::max()
  /// (the default) means "no extra knowledge".
  Time run_span(const Instance& instance, const PortfolioEntry& entry,
                std::vector<Time>* starts_out = nullptr,
                const PortfolioOptions& options = {},
                Time earliest_affected_hint = Time::max());

  /// View form of the single-entry span path (always shared-timeline).
  /// This is the miner's hot loop: a scratch JobTable is evaluated
  /// without materializing an Instance.
  Time run_span(InstanceView view, const PortfolioEntry& entry,
                std::vector<Time>* starts_out = nullptr,
                Time earliest_affected_hint = Time::max());

  /// Enables checkpointed prefix replay on the shared-timeline span path:
  /// each (scheduler, model) pair keeps up to `max_checkpoints` mid-run
  /// engine checkpoints strided across the last replayed timeline, and the
  /// next run over a similar timeline resumes from the deepest checkpoint
  /// whose prefix the change cannot affect (bit-identical to a full
  /// replay; pinned by the checkpoint differential tests/oracles). By
  /// default only clairvoyant entries participate; the miner-style static
  /// non-clairvoyant replay (NoDeferralOracle, preloaded timeline) is just
  /// as deterministic, so such callers opt in with
  /// `include_nonclairvoyant`. The adaptive-adversary gate disables prefix
  /// replay exactly like it disables timeline sharing. Requires scheduler
  /// objects that stay alive (and unreconfigured) across runs; a changed
  /// scheduler at the same address is detected by type+name and retires
  /// the stale checkpoints.
  void enable_prefix_replay(
      std::size_t max_checkpoints = EngineCheckpointSeries::kDefaultSlots,
      bool include_nonclairvoyant = false);

  /// Disables prefix replay and drops all lineages (stats are kept).
  void disable_prefix_replay();

  const PrefixReplayStats& prefix_stats() const { return prefix_stats_; }

  /// Full-result mode: one SimulationResult per entry (realized instance,
  /// validated schedule, optional trace). Still amortizes the prepared
  /// timeline across entries on the non-adaptive path.
  std::vector<SimulationResult> run_full(
      const Instance& instance, std::span<const PortfolioEntry> entries,
      const PortfolioOptions& options = {});

 private:
  /// Checkpoint lineage: the last prepared timeline replayed for one
  /// (scheduler, model) pair plus the checkpoint series captured over it.
  /// type/name guard against a different scheduler reusing the address.
  struct PrefixLineage {
    const OnlineScheduler* scheduler = nullptr;
    bool clairvoyant = false;
    const std::type_info* type = nullptr;
    std::string name;
    bool has_base = false;
    std::vector<detail::EngineJobRecord> base_records;
    std::vector<Event> base_staged;
    EngineCheckpointSeries series;
  };

  Time shared_span(const PortfolioEntry& entry,
                   std::vector<Time>* starts_engine_order);
  Time adaptive_span(const Instance& instance, const PortfolioEntry& entry,
                     const PortfolioOptions& options);
  /// Shared-timeline span over the already-prepared timeline, resuming
  /// from the deepest valid checkpoint when one exists and recapturing the
  /// invalidated tail for the next run.
  Time prefix_span(const PortfolioEntry& entry,
                   std::vector<Time>* starts_engine_order,
                   Time earliest_affected_hint);
  bool prefix_eligible(const PortfolioEntry& entry) const {
    return prefix_enabled_ &&
           (entry.clairvoyant || prefix_nonclairvoyant_);
  }
  PrefixLineage& lineage_for(const PortfolioEntry& entry);

  PreparedInstance prepared_;
  std::vector<Time> starts_scratch_;
  EngineWorkspacePool::Lease workspace_;
  bool prefix_enabled_ = false;
  bool prefix_nonclairvoyant_ = false;
  std::size_t prefix_max_checkpoints_ = EngineCheckpointSeries::kDefaultSlots;
  std::vector<std::unique_ptr<PrefixLineage>> lineages_;
  PrefixReplayStats prefix_stats_;
};

/// Convenience wrappers over a thread-local PortfolioRunner.
PortfolioSpanResult simulate_portfolio_spans(
    const Instance& instance, std::span<const PortfolioEntry> entries,
    const PortfolioOptions& options = {});
std::vector<SimulationResult> simulate_portfolio(
    const Instance& instance, std::span<const PortfolioEntry> entries,
    const PortfolioOptions& options = {});

}  // namespace fjs
