// Conformance harness for USER-WRITTEN schedulers.
//
// Anyone implementing OnlineScheduler against this engine faces the same
// traps: half-open boundary ticks, zero-laxity arrivals, simultaneous
// events, bursts, clairvoyance gating. This harness runs a battery of
// crafted probes and reports failures with reproduction detail, so a new
// scheduler can be validated in one call before any experiment trusts it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.h"

namespace fjs {

struct ConformanceIssue {
  std::string probe;    ///< which battery case failed
  std::string message;  ///< what went wrong (exception text or violation)
};

struct ConformanceReport {
  std::vector<ConformanceIssue> issues;
  std::size_t probes_run = 0;
  bool passed() const { return issues.empty(); }
  std::string to_string() const;
};

/// Runs the battery against schedulers produced by `factory` (a fresh
/// instance per probe; `clairvoyant` selects the engine model). Checks,
/// per probe: the run completes, the schedule is valid, and the recorded
/// trace passes the independent trace validator.
ConformanceReport run_conformance_suite(
    const std::function<std::unique_ptr<OnlineScheduler>()>& factory,
    bool clairvoyant);

}  // namespace fjs
