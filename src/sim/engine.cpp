#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"
#include "support/telemetry.h"

namespace fjs {
namespace {

// Engine telemetry (docs/OBSERVABILITY.md): all deterministic — under
// --jobs 1 they depend only on the simulated workload, not on timing.
telemetry::Counter g_tm_events{"engine.events",
                               telemetry::Stability::kDeterministic};
telemetry::Counter g_tm_runs{"engine.runs",
                             telemetry::Stability::kDeterministic};
telemetry::Counter g_tm_ckpt_captured{"engine.checkpoints_captured",
                                      telemetry::Stability::kDeterministic};
telemetry::Counter g_tm_ckpt_resumed{"engine.checkpoints_resumed",
                                     telemetry::Stability::kDeterministic};
telemetry::Histogram g_tm_heap_depth{"engine.heap_depth",
                                     telemetry::Stability::kDeterministic};

}  // namespace

namespace {

/// Min-heap ordering used by the 4-ary event heap; the strict-weak mirror
/// of EventAfter (earliest time, then kind, then insertion order first).
inline bool event_before(const Event& a, const Event& b) {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  if (a.kind != b.kind) {
    return same_tick_rank(a.kind) < same_tick_rank(b.kind);
  }
  return a.seq < b.seq;
}

}  // namespace

namespace detail {

Time EngineContext::now() const { return engine_.now_; }

bool EngineContext::clairvoyant() const {
  return engine_.options_.clairvoyant;
}

JobView EngineContext::view(JobId id) const {
  const EngineJobRecord& r = engine_.record(id);
  return JobView{.id = id, .arrival = r.job.arrival, .deadline = r.job.deadline};
}

Time EngineContext::length_of(JobId id) const {
  FJS_REQUIRE(engine_.options_.clairvoyant,
              "length_of called in non-clairvoyant mode");
  const EngineJobRecord& r = engine_.record(id);
  FJS_CHECK(r.length_known, "clairvoyant job without a known length");
  return r.job.length;
}

bool EngineContext::is_pending(JobId id) const {
  return engine_.record(id).state == EngineJobState::kPending;
}

const std::vector<JobId>& EngineContext::pending() const {
  return engine_.pending_view();
}

const std::vector<JobId>& EngineContext::running() const {
  return engine_.running_view();
}

void EngineContext::start_job(JobId id) { engine_.start_job(id); }

void EngineContext::set_timer(Time t, std::uint64_t tag) {
  FJS_REQUIRE(t >= engine_.now_, "set_timer: time in the past");
  engine_.push(Event{.time = t,
                     .seq = 0,
                     .tag = tag,
                     .job = kInvalidJob,
                     .kind = EventKind::kSchedulerTimer});
}

}  // namespace detail

Engine::Engine(JobSource& source, LengthOracle& oracle,
               OnlineScheduler& scheduler, EngineOptions options,
               EngineWorkspace* recycle)
    : source_(source),
      oracle_(oracle),
      scheduler_(scheduler),
      options_(options),
      workspace_(recycle),
      now_(Time::min()),
      context_(*this) {
  adopt_workspace();
  if (options_.reserve_jobs > 0) {
    const std::size_t n = options_.reserve_jobs;
    jobs_.reserve(n);
    pending_.reserve(n);
    running_.reserve(n);
    pending_view_.reserve(n);
    running_view_.reserve(n);
    staged_.reserve(n);
    // With arrivals staged, heap occupancy tracks outstanding jobs (their
    // deadline + completion events), not total jobs; still reserve for the
    // worst case so adversarial sources never reallocate mid-run.
    heap_.reserve(2 * n + 16);
  }
}

Engine::~Engine() = default;

void Engine::adopt_workspace() {
  if (workspace_ == nullptr) {
    return;
  }
  jobs_.swap(workspace_->jobs_);
  heap_.swap(workspace_->heap_);
  staged_.swap(workspace_->staged_);
  pending_.swap(workspace_->pending_);
  running_.swap(workspace_->running_);
  pending_view_.swap(workspace_->pending_view_);
  running_view_.swap(workspace_->running_view_);
  std::swap(span_, workspace_->span_);
  jobs_.clear();
  heap_.clear();
  staged_.clear();
  pending_.clear();
  running_.clear();
  pending_view_.clear();
  running_view_.clear();
  span_.clear();
}

void Engine::recycle_workspace() {
  if (workspace_ == nullptr) {
    return;
  }
  jobs_.swap(workspace_->jobs_);
  heap_.swap(workspace_->heap_);
  staged_.swap(workspace_->staged_);
  pending_.swap(workspace_->pending_);
  running_.swap(workspace_->running_);
  pending_view_.swap(workspace_->pending_view_);
  running_view_.swap(workspace_->running_view_);
  std::swap(span_, workspace_->span_);
  workspace_ = nullptr;
}

void Engine::preload_static(
    const std::vector<detail::EngineJobRecord>& records,
    const std::vector<Event>& staged) {
  FJS_REQUIRE(!started_ && jobs_.empty() && staged_.empty() && heap_.empty(),
              "preload_static: engine already holds jobs or events");
  FJS_REQUIRE(records.size() == staged.size(),
              "preload_static: one staged arrival per job record");
  // Copy-assignment reuses the adopted workspace capacity: once warm, a
  // preload is two memcpy-sized copies and no allocation.
  jobs_ = records;
  staged_ = staged;
  next_seq_ = static_cast<std::uint64_t>(staged_.size());
}

void Engine::resume_static(const EngineCheckpoint& ckpt,
                           const std::vector<detail::EngineJobRecord>& records,
                           const std::vector<Event>& staged) {
  FJS_REQUIRE(!started_ && jobs_.empty() && staged_.empty() && heap_.empty(),
              "resume_static: engine already holds jobs or events");
  FJS_REQUIRE(ckpt.valid, "resume_static: invalid checkpoint");
  FJS_REQUIRE(records.size() == staged.size(),
              "resume_static: one staged arrival per job record");
  FJS_REQUIRE(ckpt.jobs.size() == records.size(),
              "resume_static: job count differs from the captured run");
  FJS_REQUIRE(ckpt.staged_head <= records.size(),
              "resume_static: checkpoint past the timeline");
  // Arrived jobs ([0, staged_head)) carry run state and come from the
  // checkpoint; the suffix is pre-arrival in both runs, so the (possibly
  // mutated) new template is authoritative there. All copy-assigns below
  // reuse the workspace's capacity — zero steady-state allocations.
  jobs_ = ckpt.jobs;
  std::copy(records.begin() + static_cast<std::ptrdiff_t>(ckpt.staged_head),
            records.end(),
            jobs_.begin() + static_cast<std::ptrdiff_t>(ckpt.staged_head));
  staged_ = staged;
  staged_head_ = ckpt.staged_head;
  heap_ = ckpt.heap;
  pending_ = ckpt.pending;
  running_ = ckpt.running;
  pending_view_ = ckpt.pending_view;
  running_view_ = ckpt.running_view;
  pending_view_dirty_ = ckpt.pending_view_dirty;
  running_view_dirty_ = ckpt.running_view_dirty;
  span_ = ckpt.span;
  now_ = ckpt.now;
  next_seq_ = ckpt.next_seq;
  next_order_ = ckpt.next_order;
  done_count_ = ckpt.done_count;
  event_count_ = ckpt.event_count;
  scheduler_.load_state(ckpt.scheduler_state.data(),
                        ckpt.scheduler_state.size());
  resumed_ = true;
  g_tm_ckpt_resumed.increment();
}

void Engine::capture_into(EngineCheckpoint& ckpt) {
  ckpt.valid = true;
  ckpt.staged_head = staged_head_;
  ckpt.next_seq = next_seq_;
  ckpt.next_order = next_order_;
  ckpt.now = now_;
  ckpt.done_count = done_count_;
  ckpt.event_count = event_count_;
  ckpt.trace_len = trace_.size();
  ckpt.pending_view_dirty = pending_view_dirty_;
  ckpt.running_view_dirty = running_view_dirty_;
  ckpt.jobs = jobs_;
  ckpt.heap = heap_;
  ckpt.pending = pending_;
  ckpt.running = running_;
  ckpt.pending_view = pending_view_;
  ckpt.running_view = running_view_;
  ckpt.span = span_;
  scheduler_.save_state(ckpt.scheduler_state);
}

void Engine::maybe_capture() {
  // Called right before the staged arrival at staged_head_ is consumed.
  // Slots whose planned index is already behind (possible only on a resumed
  // run whose cursor was armed conservatively) can never be captured here.
  auto& cursor = series_->cursor_;
  while (cursor < series_->capture_indices_.size() &&
         series_->capture_indices_[cursor] < staged_head_) {
    ++cursor;
  }
  if (cursor < series_->capture_indices_.size() &&
      series_->capture_indices_[cursor] == staged_head_) {
    capture_into(series_->slots_[cursor]);
    ++cursor;
    g_tm_ckpt_captured.increment();
  }
}

void EngineCheckpointSeries::plan(std::size_t arrivals,
                                  std::size_t max_slots) {
  // Strided indices ceil(arrivals * j / (K + 1)), j = 1..K, deduplicated,
  // never 0 (empty prefix) and necessarily < arrivals.
  static thread_local std::vector<std::size_t> planned;
  planned.clear();
  for (std::size_t j = 1; j <= max_slots; ++j) {
    const std::size_t idx =
        (arrivals * j + max_slots) / (max_slots + 1);  // ceil
    if (idx == 0 || idx >= arrivals) {
      continue;
    }
    if (planned.empty() || planned.back() < idx) {
      planned.push_back(idx);
    }
  }
  if (planned == capture_indices_) {
    return;  // same plan: keep captured slots (the mutate-in-place loop)
  }
  capture_indices_ = planned;
  slots_.resize(capture_indices_.size());
  invalidate_from(0);
  cursor_ = 0;
}

std::ptrdiff_t EngineCheckpointSeries::deepest_valid(std::size_t k_diff,
                                                     Time t_affected) const {
  for (std::size_t i = slots_.size(); i-- > 0;) {
    if (slots_[i].valid && capture_indices_[i] <= k_diff &&
        slots_[i].now < t_affected) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

void EngineCheckpointSeries::invalidate_from(std::size_t first) {
  for (std::size_t i = first; i < slots_.size(); ++i) {
    slots_[i].valid = false;
  }
}

Engine::JobRecord& Engine::record(JobId id) {
  FJS_REQUIRE(id < jobs_.size(), "engine: unknown job id");
  return jobs_[id];
}

void Engine::push(Event event) {
  event.seq = next_seq_++;
  heap_insert(event);
}

void Engine::heap_insert(const Event& event) {
  // Hole-based sift-up: shift losing parents down into the hole and place
  // the new event once, instead of swapping (one copy per level, not three).
  std::size_t i = heap_.size();
  heap_.push_back(event);
  heap_high_water_ = std::max(heap_high_water_, heap_.size());
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!event_before(event, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = event;
}

Event Engine::pop_event() {
  const Event top = heap_.front();
  const Event last_event = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) {
    return top;
  }
  // Hole-based sift-down of the displaced last element.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) {
      break;
    }
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (event_before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!event_before(heap_[best], last_event)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last_event;
  return top;
}

void Engine::list_push(std::vector<JobId>& list, std::vector<JobId>& view,
                       JobId id) {
  JobRecord& rec = jobs_[id];
  rec.order = next_order_++;
  rec.slot = static_cast<std::uint32_t>(list.size());
  list.push_back(id);
  // The new id carries the largest order rank, so appending keeps the view
  // in rank order; removals only mark the view dirty and are filtered out
  // lazily (compact_view), never re-sorted.
  view.push_back(id);
}

void Engine::list_remove(std::vector<JobId>& list, bool& view_dirty,
                         JobId id) {
  JobRecord& rec = jobs_[id];
  const std::uint32_t slot = rec.slot;
  FJS_CHECK(slot < list.size() && list[slot] == id,
            "engine: job missing from its membership list");
  const JobId moved = list.back();
  list[slot] = moved;
  jobs_[moved].slot = slot;
  list.pop_back();
  view_dirty = true;
}

void Engine::compact_view(std::vector<JobId>& view, JobState wanted) const {
  // Jobs enter each view at most once (pending at arrival, running at
  // start) and never return to an earlier state, so dropping the ids that
  // moved on leaves exactly the current members, still in rank order.
  // Each id is appended once and erased once: amortized O(1) per
  // transition, where a sort-based rebuild would pay O(k log k) per query.
  std::erase_if(view,
                [&](JobId id) { return jobs_[id].state != wanted; });
}

const std::vector<JobId>& Engine::pending_view() {
  if (pending_view_dirty_) {
    compact_view(pending_view_, JobState::kPending);
    pending_view_dirty_ = false;
  }
  return pending_view_;
}

const std::vector<JobId>& Engine::running_view() {
  if (running_view_dirty_) {
    compact_view(running_view_, JobState::kRunning);
    running_view_dirty_ = false;
  }
  return running_view_;
}

void Engine::trace_event(Time t, EventKind kind, JobId job,
                         std::int64_t detail) {
  if (options_.record_trace) {
    trace_.record(TraceEntry{.time = t, .kind = kind, .job = job,
                             .detail = detail});
  }
}

void Engine::release(const JobSpec& spec) {
  FJS_REQUIRE(!started_ || spec.arrival >= now_,
              "source released a job in the past");
  FJS_REQUIRE(spec.arrival <= spec.deadline,
              "source released a job with deadline before arrival");
  if (spec.length.has_value()) {
    FJS_REQUIRE(*spec.length > Time::zero(),
                "source released a job with non-positive length");
    // Starting at the deadline is legal, so deadline + length must be
    // representable or the completion push below would overflow (UB).
    FJS_REQUIRE(spec.deadline <= Time::max() - *spec.length,
                "source released a job whose latest completion overflows "
                "the time axis");
  } else {
    FJS_REQUIRE(!options_.clairvoyant,
                "clairvoyant run requires lengths at release");
  }
  const auto id = static_cast<JobId>(jobs_.size());
  JobRecord rec;
  rec.job = Job{.id = id,
                .arrival = spec.arrival,
                .deadline = spec.deadline,
                .length = spec.length.value_or(Time::zero())};
  rec.length_known = spec.length.has_value();
  jobs_.push_back(rec);
  const Event arrival{.time = spec.arrival,
                      .seq = next_seq_++,
                      .tag = 0,
                      .job = id,
                      .kind = EventKind::kArrival};
  // Releases almost always come in nondecreasing arrival order (static
  // replays sort up front; adaptive sources release at >= now). Those go
  // to the FIFO staging vector so the heap never sees them; an
  // out-of-order release falls back to the heap. pop order is identical
  // either way — both structures are merged by (time, kind, seq).
  if (staged_head_ >= staged_.size() ||
      spec.arrival >= staged_.back().time) {
    staged_.push_back(arrival);
  } else {
    heap_insert(arrival);
  }
}

void Engine::apply(const SourceAction& action) {
  for (const JobSpec& spec : action.releases) {
    release(spec);
  }
  if (action.wakeup.has_value()) {
    FJS_REQUIRE(!started_ || *action.wakeup >= now_,
                "source wakeup in the past");
    push(Event{.time = *action.wakeup,
               .seq = 0,
               .tag = 0,
               .job = kInvalidJob,
               .kind = EventKind::kSourceWakeup});
  }
}

void Engine::start_job(JobId id) {
  JobRecord& rec = record(id);
  FJS_REQUIRE(rec.state == JobState::kPending,
              "start_job: job is not pending");
  FJS_REQUIRE(now_ >= rec.job.arrival, "start_job: before arrival");
  FJS_REQUIRE(now_ <= rec.job.deadline,
              "start_job: job " + rec.job.to_string() +
                  " started after its starting deadline");
  rec.state = JobState::kRunning;
  rec.start = now_;
  list_remove(pending_, pending_view_dirty_, id);
  list_push(running_, running_view_, id);
  trace_event(now_, EventKind::kStart, id, 0);

  if (rec.length_known) {
    span_.add(Interval::from_length(now_, rec.job.length));
    push(Event{.time = now_ + rec.job.length,
               .seq = 0,
               .tag = 0,
               .job = id,
               .kind = EventKind::kCompletion});
  } else {
    const LengthOracle::StartDecision decision = oracle_.at_start(id, now_);
    if (decision.length.has_value()) {
      FJS_REQUIRE(*decision.length > Time::zero(),
                  "oracle returned non-positive length");
      FJS_REQUIRE(now_ <= Time::max() - *decision.length,
                  "oracle returned a length whose completion overflows "
                  "the time axis");
      rec.job.length = *decision.length;
      rec.length_known = true;
      span_.add(Interval::from_length(now_, rec.job.length));
      push(Event{.time = now_ + rec.job.length,
                 .seq = 0,
                 .tag = 0,
                 .job = id,
                 .kind = EventKind::kCompletion});
    } else {
      FJS_REQUIRE(decision.decide_at > now_,
                  "oracle deferral must be strictly in the future");
      push(Event{.time = decision.decide_at,
                 .seq = 0,
                 .tag = 0,
                 .job = id,
                 .kind = EventKind::kLengthDecision});
    }
  }

  apply(source_.on_start(id, now_));
}

void Engine::process(const Event& event) {
  switch (event.kind) {
    case EventKind::kLengthDecision: {
      JobRecord& rec = record(event.job);
      FJS_CHECK(rec.state == JobState::kRunning && !rec.length_known,
                "length decision for a non-running or decided job");
      const Time length = oracle_.decide(event.job, now_);
      FJS_REQUIRE(length > Time::zero(), "oracle decided non-positive length");
      // Checked before any start+length is formed: the old `start + length
      // >= now` guard itself overflowed (UB) on adversarial lengths.
      // length > 0 makes Time::max() - length safe.
      FJS_REQUIRE(rec.start <= Time::max() - length,
                  "oracle decided a length whose completion overflows "
                  "the time axis");
      FJS_REQUIRE(rec.start + length >= now_,
                  "oracle decided a completion in the past");
      rec.job.length = length;
      rec.length_known = true;
      span_.add(Interval::from_length(rec.start, length));
      trace_event(now_, EventKind::kLengthDecision, event.job, length.ticks());
      push(Event{.time = rec.start + length,
                 .seq = 0,
                 .tag = 0,
                 .job = event.job,
                 .kind = EventKind::kCompletion});
      break;
    }
    case EventKind::kCompletion: {
      JobRecord& rec = record(event.job);
      FJS_CHECK(rec.state == JobState::kRunning, "completion of non-running job");
      rec.state = JobState::kDone;
      list_remove(running_, running_view_dirty_, event.job);
      ++done_count_;
      trace_event(now_, EventKind::kCompletion, event.job,
                  rec.job.length.ticks());
      scheduler_.on_completion(context_, event.job);
      apply(source_.on_complete(event.job, now_));
      break;
    }
    case EventKind::kArrival: {
      JobRecord& rec = record(event.job);
      FJS_CHECK(rec.state == JobState::kPending, "duplicate arrival");
      list_push(pending_, pending_view_, event.job);
      push(Event{.time = rec.job.deadline,
                 .seq = 0,
                 .tag = 0,
                 .job = event.job,
                 .kind = EventKind::kDeadline});
      trace_event(now_, EventKind::kArrival, event.job, 0);
      scheduler_.on_arrival(context_, event.job);
      break;
    }
    case EventKind::kDeadline: {
      JobRecord& rec = record(event.job);
      if (rec.state != JobState::kPending) {
        break;  // already started
      }
      trace_event(now_, EventKind::kDeadline, event.job, 0);
      scheduler_.on_deadline(context_, event.job);
      // Re-fetch: the callback may have released jobs (via an adaptive
      // source reacting to starts), reallocating jobs_ under `rec`.
      const JobRecord& after = record(event.job);
      FJS_REQUIRE(after.state != JobState::kPending,
                  "scheduler " + scheduler_.name() +
                      " left job " + after.job.to_string() +
                      " unstarted at its starting deadline");
      break;
    }
    case EventKind::kSchedulerTimer: {
      trace_event(now_, EventKind::kSchedulerTimer, kInvalidJob,
                  static_cast<std::int64_t>(event.tag));
      scheduler_.on_timer(context_, event.tag);
      break;
    }
    case EventKind::kSourceWakeup: {
      trace_event(now_, EventKind::kSourceWakeup, kInvalidJob, 0);
      apply(source_.on_wakeup(now_));
      break;
    }
    case EventKind::kStart:
      FJS_UNREACHABLE("kStart is trace-only, never queued");
  }
}

void Engine::drive() {
  FJS_REQUIRE(!started_, "Engine::run called twice");
  if (scheduler_.requires_clairvoyance()) {
    FJS_REQUIRE(options_.clairvoyant,
                "scheduler " + scheduler_.name() +
                    " requires the clairvoyant model");
  }
  if (!resumed_) {
    // A resumed run's checkpoint already encodes the post-reset,
    // post-begin state; resetting here would wipe the restored scheduler.
    scheduler_.reset();
    apply(source_.begin());
  }
  started_ = true;
  const std::size_t events_before = event_count_;

  // Two-source merge: the staged arrival FIFO and the heap are combined
  // by the same (time, kind, seq) order the heap alone would yield.
  while (true) {
    const bool have_staged = staged_head_ < staged_.size();
    if (!have_staged && heap_.empty()) {
      break;
    }
    Event event;
    if (have_staged &&
        (heap_.empty() || event_before(staged_[staged_head_], heap_.front()))) {
      if (series_ != nullptr) {
        maybe_capture();
      }
      event = staged_[staged_head_++];
    } else {
      event = pop_event();
    }
    FJS_CHECK(now_ == Time::min() || event.time >= now_,
              "event time went backwards");
    now_ = event.time;
    ++event_count_;
    FJS_REQUIRE(event_count_ <= options_.max_events,
                "engine exceeded max_events");
    process(event);
  }

  g_tm_events.add(event_count_ - events_before);
  g_tm_runs.increment();
  g_tm_heap_depth.record(heap_high_water_);
}

SimulationResult Engine::run() {
  drive();

  SimulationResult result;
  std::vector<Job> realized;
  realized.reserve(jobs_.size());
  Schedule schedule(jobs_.size());
  for (JobId id = 0; id < jobs_.size(); ++id) {
    const JobRecord& rec = jobs_[id];
    FJS_CHECK(rec.state == JobState::kDone,
              "job " + rec.job.to_string() + " did not complete");
    FJS_CHECK(rec.length_known, "job completed without a realized length");
    realized.push_back(rec.job);
    schedule.set_start(id, rec.start);
  }
  result.instance = Instance(std::move(realized));
  result.schedule = std::move(schedule);
  result.schedule.validate(result.instance);
  result.trace = std::move(trace_);
  result.event_count = event_count_;
  result.realized_span = span_.span();
  recycle_workspace();
  return result;
}

Time Engine::run_span(std::vector<Time>* starts_out) {
  drive();
  FJS_CHECK(done_count_ == jobs_.size(),
            "run_span: not every released job completed");
  if (starts_out != nullptr) {
    starts_out->resize(jobs_.size());
    for (JobId id = 0; id < jobs_.size(); ++id) {
      (*starts_out)[id] = jobs_[id].start;
    }
  }
  const Time span = span_.span();
  recycle_workspace();
  return span;
}

SimulationResult simulate(const Instance& instance, OnlineScheduler& scheduler,
                          bool clairvoyant, bool record_trace) {
  const EngineWorkspacePool::Lease workspace = engine_workspace_pool().acquire();
  StaticSource source(instance);
  NoDeferralOracle oracle;
  Engine engine(source, oracle, scheduler,
                EngineOptions{.clairvoyant = clairvoyant,
                              .record_trace = record_trace,
                              .reserve_jobs = instance.size()},
                workspace.get());
  return engine.run();
}

Time simulate_span(const Instance& instance, OnlineScheduler& scheduler,
                   bool clairvoyant) {
  const EngineWorkspacePool::Lease workspace = engine_workspace_pool().acquire();
  StaticSource source(instance);
  NoDeferralOracle oracle;
  Engine engine(source, oracle, scheduler,
                EngineOptions{.clairvoyant = clairvoyant,
                              .record_trace = false,
                              .reserve_jobs = instance.size()},
                workspace.get());
  return engine.run_span();
}

EngineWorkspacePool& engine_workspace_pool() {
  static EngineWorkspacePool pool;
  return pool;
}

}  // namespace fjs
