#include "sim/engine.h"

#include <algorithm>

#include "support/assert.h"

namespace fjs {

/// Engine-backed implementation of the scheduler-facing context.
class Engine::Context final : public SchedulerContext {
 public:
  explicit Context(Engine& engine) : engine_(engine) {}

  Time now() const override { return engine_.now_; }

  bool clairvoyant() const override { return engine_.options_.clairvoyant; }

  JobView view(JobId id) const override {
    const JobRecord& r = engine_.record(id);
    return JobView{.id = id, .arrival = r.job.arrival, .deadline = r.job.deadline};
  }

  Time length_of(JobId id) const override {
    FJS_REQUIRE(engine_.options_.clairvoyant,
                "length_of called in non-clairvoyant mode");
    const JobRecord& r = engine_.record(id);
    FJS_CHECK(r.length_known, "clairvoyant job without a known length");
    return r.job.length;
  }

  const std::vector<JobId>& pending() const override {
    return engine_.pending_;
  }

  const std::vector<JobId>& running() const override {
    return engine_.running_;
  }

  void start_job(JobId id) override { engine_.start_job(id); }

  void set_timer(Time t, std::uint64_t tag) override {
    FJS_REQUIRE(t >= engine_.now_, "set_timer: time in the past");
    engine_.push(Event{.time = t,
                       .kind = EventKind::kSchedulerTimer,
                       .seq = 0,
                       .job = kInvalidJob,
                       .tag = tag});
  }

 private:
  Engine& engine_;
};

Engine::Engine(JobSource& source, LengthOracle& oracle,
               OnlineScheduler& scheduler, EngineOptions options)
    : source_(source),
      oracle_(oracle),
      scheduler_(scheduler),
      options_(options),
      now_(Time::min()),
      context_(std::make_unique<Context>(*this)) {}

Engine::~Engine() = default;

Engine::JobRecord& Engine::record(JobId id) {
  FJS_REQUIRE(id < jobs_.size(), "engine: unknown job id");
  return jobs_[id];
}

void Engine::push(Event event) {
  event.seq = next_seq_++;
  queue_.push(event);
}

void Engine::trace_event(Time t, EventKind kind, JobId job,
                         std::int64_t detail) {
  if (options_.record_trace) {
    trace_.record(TraceEntry{.time = t, .kind = kind, .job = job,
                             .detail = detail});
  }
}

void Engine::release(const JobSpec& spec) {
  FJS_REQUIRE(!started_ || spec.arrival >= now_,
              "source released a job in the past");
  FJS_REQUIRE(spec.arrival <= spec.deadline,
              "source released a job with deadline before arrival");
  if (spec.length.has_value()) {
    FJS_REQUIRE(*spec.length > Time::zero(),
                "source released a job with non-positive length");
  } else {
    FJS_REQUIRE(!options_.clairvoyant,
                "clairvoyant run requires lengths at release");
  }
  const auto id = static_cast<JobId>(jobs_.size());
  JobRecord rec;
  rec.job = Job{.id = id,
                .arrival = spec.arrival,
                .deadline = spec.deadline,
                .length = spec.length.value_or(Time::zero())};
  rec.length_known = spec.length.has_value();
  jobs_.push_back(rec);
  push(Event{.time = spec.arrival,
             .kind = EventKind::kArrival,
             .seq = 0,
             .job = id,
             .tag = 0});
}

void Engine::apply(const SourceAction& action) {
  for (const JobSpec& spec : action.releases) {
    release(spec);
  }
  if (action.wakeup.has_value()) {
    FJS_REQUIRE(!started_ || *action.wakeup >= now_,
                "source wakeup in the past");
    push(Event{.time = *action.wakeup,
               .kind = EventKind::kSourceWakeup,
               .seq = 0,
               .job = kInvalidJob,
               .tag = 0});
  }
}

void Engine::start_job(JobId id) {
  JobRecord& rec = record(id);
  FJS_REQUIRE(rec.state == JobState::kPending,
              "start_job: job is not pending");
  FJS_REQUIRE(now_ >= rec.job.arrival, "start_job: before arrival");
  FJS_REQUIRE(now_ <= rec.job.deadline,
              "start_job: job " + rec.job.to_string() +
                  " started after its starting deadline");
  rec.state = JobState::kRunning;
  rec.start = now_;
  auto it = std::find(pending_.begin(), pending_.end(), id);
  FJS_CHECK(it != pending_.end(), "start_job: job missing from pending list");
  pending_.erase(it);
  running_.push_back(id);
  trace_event(now_, EventKind::kStart, id, 0);

  if (rec.length_known) {
    push(Event{.time = now_ + rec.job.length,
               .kind = EventKind::kCompletion,
               .seq = 0,
               .job = id,
               .tag = 0});
  } else {
    const LengthOracle::StartDecision decision = oracle_.at_start(id, now_);
    if (decision.length.has_value()) {
      FJS_REQUIRE(*decision.length > Time::zero(),
                  "oracle returned non-positive length");
      rec.job.length = *decision.length;
      rec.length_known = true;
      push(Event{.time = now_ + rec.job.length,
                 .kind = EventKind::kCompletion,
                 .seq = 0,
                 .job = id,
                 .tag = 0});
    } else {
      FJS_REQUIRE(decision.decide_at > now_,
                  "oracle deferral must be strictly in the future");
      push(Event{.time = decision.decide_at,
                 .kind = EventKind::kLengthDecision,
                 .seq = 0,
                 .job = id,
                 .tag = 0});
    }
  }

  apply(source_.on_start(id, now_));
}

void Engine::process(const Event& event) {
  switch (event.kind) {
    case EventKind::kLengthDecision: {
      JobRecord& rec = record(event.job);
      FJS_CHECK(rec.state == JobState::kRunning && !rec.length_known,
                "length decision for a non-running or decided job");
      const Time length = oracle_.decide(event.job, now_);
      FJS_REQUIRE(length > Time::zero(), "oracle decided non-positive length");
      FJS_REQUIRE(rec.start + length >= now_,
                  "oracle decided a completion in the past");
      rec.job.length = length;
      rec.length_known = true;
      trace_event(now_, EventKind::kLengthDecision, event.job, length.ticks());
      push(Event{.time = rec.start + length,
                 .kind = EventKind::kCompletion,
                 .seq = 0,
                 .job = event.job,
                 .tag = 0});
      break;
    }
    case EventKind::kCompletion: {
      JobRecord& rec = record(event.job);
      FJS_CHECK(rec.state == JobState::kRunning, "completion of non-running job");
      rec.state = JobState::kDone;
      auto it = std::find(running_.begin(), running_.end(), event.job);
      FJS_CHECK(it != running_.end(), "completed job missing from running list");
      running_.erase(it);
      trace_event(now_, EventKind::kCompletion, event.job,
                  rec.job.length.ticks());
      scheduler_.on_completion(*context_, event.job);
      apply(source_.on_complete(event.job, now_));
      break;
    }
    case EventKind::kArrival: {
      JobRecord& rec = record(event.job);
      FJS_CHECK(rec.state == JobState::kPending, "duplicate arrival");
      pending_.push_back(event.job);
      push(Event{.time = rec.job.deadline,
                 .kind = EventKind::kDeadline,
                 .seq = 0,
                 .job = event.job,
                 .tag = 0});
      trace_event(now_, EventKind::kArrival, event.job, 0);
      scheduler_.on_arrival(*context_, event.job);
      break;
    }
    case EventKind::kDeadline: {
      JobRecord& rec = record(event.job);
      if (rec.state != JobState::kPending) {
        break;  // already started
      }
      trace_event(now_, EventKind::kDeadline, event.job, 0);
      scheduler_.on_deadline(*context_, event.job);
      FJS_REQUIRE(rec.state != JobState::kPending,
                  "scheduler " + scheduler_.name() +
                      " left job " + rec.job.to_string() +
                      " unstarted at its starting deadline");
      break;
    }
    case EventKind::kSchedulerTimer: {
      trace_event(now_, EventKind::kSchedulerTimer, kInvalidJob,
                  static_cast<std::int64_t>(event.tag));
      scheduler_.on_timer(*context_, event.tag);
      break;
    }
    case EventKind::kSourceWakeup: {
      trace_event(now_, EventKind::kSourceWakeup, kInvalidJob, 0);
      apply(source_.on_wakeup(now_));
      break;
    }
    case EventKind::kStart:
      FJS_UNREACHABLE("kStart is trace-only, never queued");
  }
}

SimulationResult Engine::run() {
  FJS_REQUIRE(!started_, "Engine::run called twice");
  if (scheduler_.requires_clairvoyance()) {
    FJS_REQUIRE(options_.clairvoyant,
                "scheduler " + scheduler_.name() +
                    " requires the clairvoyant model");
  }
  scheduler_.reset();
  apply(source_.begin());
  started_ = true;

  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    FJS_CHECK(now_ == Time::min() || event.time >= now_,
              "event time went backwards");
    now_ = event.time;
    ++event_count_;
    FJS_REQUIRE(event_count_ <= options_.max_events,
                "engine exceeded max_events");
    process(event);
  }

  SimulationResult result;
  std::vector<Job> realized;
  realized.reserve(jobs_.size());
  Schedule schedule(jobs_.size());
  for (JobId id = 0; id < jobs_.size(); ++id) {
    const JobRecord& rec = jobs_[id];
    FJS_CHECK(rec.state == JobState::kDone,
              "job " + rec.job.to_string() + " did not complete");
    FJS_CHECK(rec.length_known, "job completed without a realized length");
    realized.push_back(rec.job);
    schedule.set_start(id, rec.start);
  }
  result.instance = Instance(std::move(realized));
  result.schedule = std::move(schedule);
  result.schedule.validate(result.instance);
  result.trace = std::move(trace_);
  result.event_count = event_count_;
  return result;
}

SimulationResult simulate(const Instance& instance, OnlineScheduler& scheduler,
                          bool clairvoyant, bool record_trace) {
  StaticSource source(instance);
  NoDeferralOracle oracle;
  Engine engine(source, oracle, scheduler,
                EngineOptions{.clairvoyant = clairvoyant,
                              .record_trace = record_trace});
  return engine.run();
}

Time simulate_span(const Instance& instance, OnlineScheduler& scheduler,
                   bool clairvoyant) {
  return simulate(instance, scheduler, clairvoyant).span();
}

}  // namespace fjs
