#include "sim/events.h"

namespace fjs {

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kLengthDecision:
      return "length-decision";
    case EventKind::kCompletion:
      return "completion";
    case EventKind::kArrival:
      return "arrival";
    case EventKind::kDeadline:
      return "deadline";
    case EventKind::kSchedulerTimer:
      return "scheduler-timer";
    case EventKind::kSourceWakeup:
      return "source-wakeup";
    case EventKind::kStart:
      return "start";
  }
  return "unknown";
}

}  // namespace fjs
