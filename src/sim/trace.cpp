#include "sim/trace.h"

#include <sstream>

#include "support/assert.h"

namespace fjs {

std::string TraceEntry::to_string() const {
  std::ostringstream os;
  os << 't' << time.to_string() << ' ' << fjs::to_string(kind);
  if (job != kInvalidJob) {
    os << " J" << job;
  }
  if (detail != 0) {
    os << " (" << detail << ')';
  }
  return os.str();
}

const TraceEntry& Trace::entry(std::size_t i) const {
  FJS_REQUIRE(i < entries_.size(), "Trace: entry out of range");
  return entries_[i];
}

std::vector<TraceEntry> Trace::filter(EventKind kind) const {
  std::vector<TraceEntry> out;
  for (const auto& e : entries_) {
    if (e.kind == kind) {
      out.push_back(e);
    }
  }
  return out;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << e.to_string() << '\n';
  }
  return os.str();
}

}  // namespace fjs
