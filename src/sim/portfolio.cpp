#include "sim/portfolio.h"

#include <algorithm>
#include <utility>

#include "support/assert.h"
#include "support/telemetry.h"

namespace fjs {
namespace {

// Process-wide mirrors of the per-runner PrefixReplayStats (the struct
// stays as the per-runner API; these aggregate across every runner and
// thread for the manifest telemetry block). Deterministic: hit/miss is a
// function of the mutation lineage, not of scheduling.
telemetry::Counter g_tm_prefix_hits{"portfolio.prefix_hits",
                                    telemetry::Stability::kDeterministic};
telemetry::Counter g_tm_prefix_misses{"portfolio.prefix_misses",
                                      telemetry::Stability::kDeterministic};
telemetry::Counter g_tm_prefix_arrivals_skipped{
    "portfolio.prefix_arrivals_skipped", telemetry::Stability::kDeterministic};
telemetry::Counter g_tm_prefix_events_skipped{
    "portfolio.prefix_events_skipped", telemetry::Stability::kDeterministic};
// Depth of the checkpoint a hit resumed from, in skipped arrivals — the
// histogram form of mean_prefix_depth().
telemetry::Histogram g_tm_prefix_depth{"portfolio.prefix_depth",
                                       telemetry::Stability::kDeterministic};

}  // namespace

namespace {

/// Source that releases nothing: the engine's timeline was installed by
/// Engine::preload_static before the run.
class NullSource final : public JobSource {
 public:
  SourceAction begin() override { return {}; }
};

}  // namespace

void PreparedInstance::prepare(InstanceView view) {
  records_.clear();
  staged_.clear();
  original_ids_.clear();
  const std::size_t n = view.size();
  records_.reserve(n);
  staged_.reserve(n);
  original_ids_.reserve(n);

  const auto add = [this, view](JobId original) {
    const Time arrival = view.arrival(original);
    const Time deadline = view.deadline(original);
    const Time length = view.length(original);
    // Same model checks Engine::release applies to a StaticSource stream,
    // hoisted out of the per-replay path. Views may come from unvalidated
    // scratch tables, so the checks stay even on the view path.
    FJS_REQUIRE(arrival <= deadline,
                "prepare: job with deadline before arrival");
    FJS_REQUIRE(length > Time::zero(),
                "prepare: job with non-positive length");
    const auto id = static_cast<JobId>(records_.size());
    detail::EngineJobRecord rec;
    rec.job = Job{.id = id,
                  .arrival = arrival,
                  .deadline = deadline,
                  .length = length};
    rec.length_known = true;
    records_.push_back(rec);
    staged_.push_back(Event{.time = arrival,
                            .seq = id,
                            .tag = 0,
                            .job = id,
                            .kind = EventKind::kArrival});
    original_ids_.push_back(original);
  };

  // Mirror StaticSource exactly: arrival order with the same sorted fast
  // path, so engine ids and event seqs match the classic replay bit for
  // bit.
  if (view.sorted_by_arrival()) {
    for (JobId id = 0; id < n; ++id) {
      add(id);
    }
    return;
  }
  // Same (arrival, id) order as Instance::ids_by_arrival(), sorted into a
  // member scratch so re-preparing stays allocation-free once warm.
  view.ids_by_arrival(sort_scratch_);
  for (const JobId id : sort_scratch_) {
    add(id);
  }
}

Time PortfolioRunner::shared_span(const PortfolioEntry& entry,
                                  std::vector<Time>* starts_engine_order) {
  NullSource source;
  NoDeferralOracle oracle;
  Engine engine(source, oracle, *entry.scheduler,
                EngineOptions{.clairvoyant = entry.clairvoyant,
                              .record_trace = false,
                              .reserve_jobs = prepared_.size()},
                workspace_.get());
  engine.preload_static(prepared_.records(), prepared_.staged());
  return engine.run_span(starts_engine_order);
}

void PortfolioRunner::enable_prefix_replay(std::size_t max_checkpoints,
                                           bool include_nonclairvoyant) {
  FJS_REQUIRE(max_checkpoints >= 1, "prefix replay: need >= 1 checkpoint");
  prefix_enabled_ = true;
  prefix_nonclairvoyant_ = include_nonclairvoyant;
  prefix_max_checkpoints_ = max_checkpoints;
}

void PortfolioRunner::disable_prefix_replay() {
  prefix_enabled_ = false;
  lineages_.clear();
}

PortfolioRunner::PrefixLineage& PortfolioRunner::lineage_for(
    const PortfolioEntry& entry) {
  const std::type_info& type = typeid(*entry.scheduler);
  for (auto& lin : lineages_) {
    if (lin->scheduler == entry.scheduler &&
        lin->clairvoyant == entry.clairvoyant) {
      if (*lin->type == type && lin->name == entry.scheduler->name()) {
        return *lin;
      }
      // Same address, different scheduler (the old object was destroyed
      // and this one reuses its storage): the captured checkpoints encode
      // the OLD scheduler's decisions, so retire them.
      lin->has_base = false;
      lin->series = EngineCheckpointSeries{};
      lin->type = &type;
      lin->name = entry.scheduler->name();
      return *lin;
    }
  }
  lineages_.push_back(std::make_unique<PrefixLineage>());
  PrefixLineage& lin = *lineages_.back();
  lin.scheduler = entry.scheduler;
  lin.clairvoyant = entry.clairvoyant;
  lin.type = &type;
  lin.name = entry.scheduler->name();
  return lin;
}

Time PortfolioRunner::prefix_span(const PortfolioEntry& entry,
                                  std::vector<Time>* starts_engine_order,
                                  Time earliest_affected_hint) {
  PrefixLineage& lin = lineage_for(entry);
  const std::size_t n = prepared_.size();
  lin.series.plan(n, prefix_max_checkpoints_);

  // Diff the prepared timeline against the lineage base: k_diff is the
  // first record whose job differs (engine ids always equal their index),
  // t_affected the earliest instant either version of that arrival
  // occupies. A checkpoint is reusable iff its whole captured prefix
  // precedes both: capture index <= k_diff and every processed event
  // strictly before t_affected (strict, so same-tick interleavings with
  // the changed arrival are never assumed).
  std::ptrdiff_t restore = -1;
  if (lin.has_base && lin.base_records.size() == n) {
    const auto& base = lin.base_records;
    const auto& fresh = prepared_.records();
    std::size_t k_diff = 0;
    while (k_diff < n &&
           base[k_diff].job.arrival == fresh[k_diff].job.arrival &&
           base[k_diff].job.deadline == fresh[k_diff].job.deadline &&
           base[k_diff].job.length == fresh[k_diff].job.length) {
      ++k_diff;
    }
    Time t_affected = earliest_affected_hint;
    if (k_diff < n) {
      t_affected = std::min(t_affected,
                            std::min(lin.base_staged[k_diff].time,
                                     prepared_.staged()[k_diff].time));
    }
    restore = lin.series.deepest_valid(k_diff, t_affected);
  } else {
    lin.series.invalidate_from(0);
  }

  NullSource source;
  NoDeferralOracle oracle;
  Engine engine(source, oracle, *entry.scheduler,
                EngineOptions{.clairvoyant = entry.clairvoyant,
                              .record_trace = false,
                              .reserve_jobs = n},
                workspace_.get());
  if (restore >= 0) {
    const auto slot = static_cast<std::size_t>(restore);
    const EngineCheckpoint& ckpt = lin.series.slot(slot);
    ++prefix_stats_.hits;
    prefix_stats_.arrivals_skipped += ckpt.staged_head;
    prefix_stats_.events_skipped += ckpt.event_count;
    g_tm_prefix_hits.increment();
    g_tm_prefix_arrivals_skipped.add(ckpt.staged_head);
    g_tm_prefix_events_skipped.add(ckpt.event_count);
    g_tm_prefix_depth.record(ckpt.staged_head);
    engine.resume_static(ckpt, prepared_.records(), prepared_.staged());
    // Shallower slots stay valid for the new base (their prefixes predate
    // the change too); the deeper tail is recaptured during this run.
    lin.series.invalidate_from(slot + 1);
    lin.series.arm(slot + 1);
  } else {
    ++prefix_stats_.misses;
    g_tm_prefix_misses.increment();
    engine.preload_static(prepared_.records(), prepared_.staged());
    lin.series.invalidate_from(0);
    lin.series.arm(0);
  }
  engine.capture_checkpoints(&lin.series);
  const Time span = engine.run_span(starts_engine_order);
  // This run's timeline becomes the lineage base (copy-assigns reuse
  // capacity: no steady-state allocation).
  lin.base_records = prepared_.records();
  lin.base_staged = prepared_.staged();
  lin.has_base = true;
  return span;
}

Time PortfolioRunner::adaptive_span(const Instance& instance,
                                    const PortfolioEntry& entry,
                                    const PortfolioOptions& options) {
  std::unique_ptr<JobSource> source;
  if (options.source_factory) {
    source = options.source_factory(instance);
  } else {
    source = std::make_unique<StaticSource>(instance);
  }
  std::unique_ptr<LengthOracle> oracle;
  if (options.oracle_factory) {
    oracle = options.oracle_factory(instance);
  }
  NoDeferralOracle no_deferral;
  LengthOracle& oracle_ref = oracle ? *oracle : no_deferral;
  Engine engine(*source, oracle_ref, *entry.scheduler,
                EngineOptions{.clairvoyant = entry.clairvoyant,
                              .record_trace = false,
                              .reserve_jobs = instance.size()},
                workspace_.get());
  return engine.run_span();
}

bool PortfolioRunner::run_spans(const Instance& instance,
                                std::span<const PortfolioEntry> entries,
                                std::vector<Time>& spans_out,
                                const PortfolioOptions& options) {
  spans_out.resize(entries.size());
  if (options.adaptive()) {
    // The realized timeline depends on scheduler behavior: never share.
    for (std::size_t i = 0; i < entries.size(); ++i) {
      spans_out[i] = adaptive_span(instance, entries[i], options);
    }
    return false;
  }
  prepared_.prepare(instance);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    spans_out[i] = prefix_eligible(entries[i])
                       ? prefix_span(entries[i], nullptr, Time::max())
                       : shared_span(entries[i], nullptr);
  }
  return true;
}

void PortfolioRunner::run_spans(InstanceView view,
                                std::span<const PortfolioEntry> entries,
                                std::vector<Time>& spans_out) {
  spans_out.resize(entries.size());
  prepared_.prepare(view);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    spans_out[i] = prefix_eligible(entries[i])
                       ? prefix_span(entries[i], nullptr, Time::max())
                       : shared_span(entries[i], nullptr);
  }
}

Time PortfolioRunner::run_span(InstanceView view, const PortfolioEntry& entry,
                               std::vector<Time>* starts_out,
                               Time earliest_affected_hint) {
  prepared_.prepare(view);
  const bool prefix = prefix_eligible(entry);
  if (starts_out == nullptr) {
    return prefix ? prefix_span(entry, nullptr, earliest_affected_hint)
                  : shared_span(entry, nullptr);
  }
  const Time span = prefix
                        ? prefix_span(entry, &starts_scratch_,
                                      earliest_affected_hint)
                        : shared_span(entry, &starts_scratch_);
  starts_out->resize(starts_scratch_.size());
  const std::vector<JobId>& original = prepared_.original_ids();
  for (std::size_t k = 0; k < starts_scratch_.size(); ++k) {
    (*starts_out)[original[k]] = starts_scratch_[k];
  }
  return span;
}

Time PortfolioRunner::run_span(const Instance& instance,
                               const PortfolioEntry& entry,
                               std::vector<Time>* starts_out,
                               const PortfolioOptions& options,
                               Time earliest_affected_hint) {
  if (options.adaptive()) {
    FJS_REQUIRE(starts_out == nullptr,
                "run_span: start capture requires the shared timeline");
    return adaptive_span(instance, entry, options);
  }
  prepared_.prepare(instance);
  const bool prefix = prefix_eligible(entry);
  if (starts_out == nullptr) {
    return prefix ? prefix_span(entry, nullptr, earliest_affected_hint)
                  : shared_span(entry, nullptr);
  }
  const Time span = prefix
                        ? prefix_span(entry, &starts_scratch_,
                                      earliest_affected_hint)
                        : shared_span(entry, &starts_scratch_);
  // Engine order is arrival order; hand the caller starts under the
  // instance's own ids.
  starts_out->resize(starts_scratch_.size());
  const std::vector<JobId>& original = prepared_.original_ids();
  for (std::size_t k = 0; k < starts_scratch_.size(); ++k) {
    (*starts_out)[original[k]] = starts_scratch_[k];
  }
  return span;
}

std::vector<SimulationResult> PortfolioRunner::run_full(
    const Instance& instance, std::span<const PortfolioEntry> entries,
    const PortfolioOptions& options) {
  std::vector<SimulationResult> results;
  results.reserve(entries.size());
  const bool adaptive = options.adaptive();
  if (!adaptive) {
    prepared_.prepare(instance);
  }
  for (const PortfolioEntry& entry : entries) {
    const EngineOptions engine_options{.clairvoyant = entry.clairvoyant,
                                       .record_trace = options.record_trace,
                                       .reserve_jobs = instance.size()};
    if (adaptive) {
      std::unique_ptr<JobSource> source;
      if (options.source_factory) {
        source = options.source_factory(instance);
      } else {
        source = std::make_unique<StaticSource>(instance);
      }
      std::unique_ptr<LengthOracle> oracle;
      if (options.oracle_factory) {
        oracle = options.oracle_factory(instance);
      }
      NoDeferralOracle no_deferral;
      LengthOracle& oracle_ref = oracle ? *oracle : no_deferral;
      Engine engine(*source, oracle_ref, *entry.scheduler, engine_options,
                    workspace_.get());
      results.push_back(engine.run());
    } else {
      NullSource source;
      NoDeferralOracle oracle;
      Engine engine(source, oracle, *entry.scheduler, engine_options,
                    workspace_.get());
      engine.preload_static(prepared_.records(), prepared_.staged());
      results.push_back(engine.run());
    }
  }
  return results;
}

PortfolioSpanResult simulate_portfolio_spans(
    const Instance& instance, std::span<const PortfolioEntry> entries,
    const PortfolioOptions& options) {
  thread_local PortfolioRunner runner;
  PortfolioSpanResult result;
  result.shared_timeline = runner.run_spans(instance, entries, result.spans,
                                            options);
  return result;
}

std::vector<SimulationResult> simulate_portfolio(
    const Instance& instance, std::span<const PortfolioEntry> entries,
    const PortfolioOptions& options) {
  thread_local PortfolioRunner runner;
  return runner.run_full(instance, entries, options);
}

}  // namespace fjs
