// Umbrella header for libfjs — pulls in the full public API.
//
// Fine-grained headers are preferred for compile time; this exists for
// quick experiments and downstream prototyping.
#pragma once

#include "analysis/convergence.h"
#include "analysis/flag_forest.h"
#include "analysis/gantt.h"
#include "analysis/instance_stats.h"
#include "analysis/ratio.h"
#include "analysis/report.h"
#include "analysis/svg.h"
#include "analysis/sweep.h"
#include "adversary/clairvoyant_lb.h"
#include "adversary/instance_miner.h"
#include "adversary/nonclairvoyant_lb.h"
#include "adversary/tightness.h"
#include "core/instance.h"
#include "core/interval.h"
#include "core/interval_set.h"
#include "core/job.h"
#include "core/job_table.h"
#include "core/schedule.h"
#include "core/span_tracker.h"
#include "core/time.h"
#include "busytime/busytime.h"
#include "dbp/packing.h"
#include "dbp/pipeline.h"
#include "dbp/simulator.h"
#include "offline/exact.h"
#include "offline/heuristic.h"
#include "offline/lower_bound.h"
#include "schedulers/batch.h"
#include "schedulers/batch_plus.h"
#include "schedulers/classify_by_duration.h"
#include "schedulers/doubler.h"
#include "schedulers/eager.h"
#include "schedulers/lazy.h"
#include "schedulers/overlap.h"
#include "schedulers/profit.h"
#include "schedulers/randomized.h"
#include "schedulers/registry.h"
#include "offline/certify.h"
#include "sim/conformance.h"
#include "sim/engine.h"
#include "sim/length_oracle.h"
#include "sim/portfolio.h"
#include "sim/scheduler.h"
#include "sim/source.h"
#include "sim/trace.h"
#include "sim/trace_check.h"
#include "support/aligned.h"
#include "support/object_pool.h"
#include "support/simd.h"
#include "support/telemetry.h"
#include "offline/annealing.h"
#include "workload/cloud_trace.h"
#include "workload/generator.h"
#include "workload/suite.h"
#include "workload/transforms.h"

namespace fjs {

/// Library version, matching the CMake project version.
inline constexpr const char* kVersion = "1.0.0";

}  // namespace fjs
