#include "analysis/sweep.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "offline/annealing.h"
#include "offline/heuristic.h"
#include "offline/lower_bound.h"
#include "schedulers/registry.h"
#include "sim/portfolio.h"
#include "support/assert.h"
#include "support/parallel.h"
#include "workload/generator.h"

namespace fjs {
namespace {

struct OptBounds {
  Time upper;
  Time lower;
};

OptBounds opt_bounds_for(const Instance& instance, const SweepOptions& opts) {
  if (opts.opt_method == OptMethod::kExact) {
    const Time opt = exact_optimal_span(instance, opts.exact_options);
    return OptBounds{opt, opt};
  }
  Time upper = heuristic_span(instance, opts.heuristic_options);
  if (opts.bracket_anneal_iterations > 0) {
    AnnealingOptions anneal_opts;
    anneal_opts.iterations = opts.bracket_anneal_iterations;
    upper = std::min(upper, anneal_schedule(instance, anneal_opts).span);
  }
  return OptBounds{upper, best_lower_bound(instance)};
}

}  // namespace

std::vector<SchedulerAggregate> run_ratio_sweep(
    const std::vector<SweepCase>& cases,
    const std::vector<std::string>& scheduler_keys,
    const SweepOptions& options) {
  FJS_REQUIRE(!scheduler_keys.empty(), "sweep: no schedulers given");
  ThreadPool& pool = options.pool != nullptr ? *options.pool : global_pool();

  // Phase 1: per-case OPT bounds (the expensive part), computed once.
  // Case costs are uneven (annealing/heuristic effort varies with the
  // instance), so workers pull cases dynamically instead of being handed
  // fixed chunks; slot-indexed writes keep the result deterministic.
  std::vector<OptBounds> bounds(cases.size());
  auto compute_bounds = [&](std::size_t i) {
    bounds[i] = opt_bounds_for(cases[i].instance, options);
  };
  if (options.serial) {
    serial_for(cases.size(), compute_bounds);
  } else {
    parallel_for(pool, cases.size(), compute_bounds, 1, ChunkPolicy::kDynamic);
  }

  // Phase 2: the (case × scheduler) grid of simulations, one task per
  // case. The portfolio kernel prepares each case's arrival timeline once
  // and replays it for every scheduler; scheduler objects are built once
  // per worker thread (the engine reset()s them before each run), so the
  // steady state allocates nothing per cell. Replays are bit-identical to
  // per-cell simulate_span (pinned by the portfolio determinism tests),
  // and slot-indexed writes keep the reduction order-independent.
  const std::size_t n_keys = scheduler_keys.size();
  const std::size_t grid = cases.size() * n_keys;
  std::vector<Time> spans(grid);
  auto run_case = [&](std::size_t c) {
    thread_local PortfolioRunner runner;
    // Consecutive cases on a worker often share a timeline prefix (family
    // sweeps grow or perturb instances gradually); checkpointed prefix
    // replay then resumes mid-timeline instead of replaying from scratch.
    // Clairvoyant-only (the conservative default) and bit-identical to the
    // full replay, so the sweep CSVs are unchanged.
    runner.enable_prefix_replay();
    thread_local std::unordered_map<std::string,
                                    std::unique_ptr<OnlineScheduler>>
        scheduler_cache;
    thread_local std::vector<PortfolioEntry> entries;
    thread_local std::vector<Time> case_spans;
    entries.clear();
    for (const std::string& key : scheduler_keys) {
      auto& slot = scheduler_cache[key];
      if (slot == nullptr) {
        slot = make_scheduler(key);
      }
      entries.push_back(
          PortfolioEntry{slot.get(), slot->requires_clairvoyance()});
    }
    runner.run_spans(cases[c].instance, entries, case_spans);
    std::copy(case_spans.begin(), case_spans.end(),
              spans.begin() + static_cast<std::ptrdiff_t>(c * n_keys));
  };
  if (options.serial) {
    serial_for(cases.size(), run_case);
  } else {
    parallel_for(pool, cases.size(), run_case, 1, ChunkPolicy::kDynamic);
  }

  // Phase 3: deterministic reduction in index order.
  std::vector<SchedulerAggregate> aggregates(scheduler_keys.size());
  for (std::size_t s = 0; s < scheduler_keys.size(); ++s) {
    aggregates[s].scheduler_key = scheduler_keys[s];
  }
  for (std::size_t c = 0; c < cases.size(); ++c) {
    for (std::size_t s = 0; s < scheduler_keys.size(); ++s) {
      const Time span = spans[c * scheduler_keys.size() + s];
      SchedulerAggregate& agg = aggregates[s];
      agg.spans.add(span.to_units());
      if (bounds[c].upper > Time::zero()) {
        agg.ratio_lower.add(time_ratio(span, bounds[c].upper));
      }
      if (bounds[c].lower > Time::zero()) {
        agg.ratio_upper.add(time_ratio(span, bounds[c].lower));
      }
    }
  }
  return aggregates;
}

std::vector<SweepCase> make_cases(const WorkloadConfig& config,
                                  const std::string& label,
                                  std::size_t replicas, std::uint64_t seed0) {
  std::vector<SweepCase> cases;
  cases.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    const std::uint64_t seed = seed0 + r;
    cases.push_back(SweepCase{.label = label, .seed = seed,
                              .instance = generate_workload(config, seed)});
  }
  return cases;
}

}  // namespace fjs
