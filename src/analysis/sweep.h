// Parallel ratio sweeps: run many (instance × scheduler) simulations and
// aggregate competitive-ratio statistics. Deterministic regardless of the
// worker count: every task owns a fresh scheduler object and results are
// reduced in index order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ratio.h"
#include "core/instance.h"
#include "offline/heuristic.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace fjs {

struct SweepCase {
  std::string label;
  std::uint64_t seed = 0;
  Instance instance;
};

struct SchedulerAggregate {
  std::string scheduler_key;
  /// Conservative per-case ratios (online / OPT-upper-bound).
  Summary ratio_lower;
  /// Upper-estimate per-case ratios (online / OPT-lower-bound); equals
  /// ratio_lower when the exact solver was used.
  Summary ratio_upper;
  /// Raw spans, for absolute comparisons.
  Summary spans;
};

struct SweepOptions {
  OptMethod opt_method = OptMethod::kBracket;
  ExactOptions exact_options = {};
  /// Effort knob for the bracket method's heuristic OPT upper bound.
  HeuristicOptions heuristic_options = {};
  /// Simulated-annealing iterations folded into the bracket's OPT upper
  /// bound (min with the heuristic). Default off: profiling the standard
  /// workload suite showed the heuristic never lost to the 10k-iteration
  /// anneal there, so the anneal was pure overhead (~60% of sweep time);
  /// the bracket verdicts only use inequalities that stay valid with the
  /// looser upper bound. Set > 0 to tighten brackets on gnarly instances.
  std::size_t bracket_anneal_iterations = 0;
  /// nullptr = use the process-global pool.
  ThreadPool* pool = nullptr;
  /// Force serial execution (for determinism tests).
  bool serial = false;
};

/// Measures every scheduler on every case. OPT bounds are computed once
/// per case and shared across schedulers.
std::vector<SchedulerAggregate> run_ratio_sweep(
    const std::vector<SweepCase>& cases,
    const std::vector<std::string>& scheduler_keys,
    const SweepOptions& options = {});

/// Builds sweep cases from a workload config: `replicas` instances with
/// seeds seed0, seed0+1, ...
std::vector<SweepCase> make_cases(const struct WorkloadConfig& config,
                                  const std::string& label,
                                  std::size_t replicas, std::uint64_t seed0);

}  // namespace fjs
