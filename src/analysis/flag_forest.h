// The §4.3 flag-job forest, as a first-class artifact.
//
// The Profit analysis builds a directed graph over flag jobs: X(J) is the
// set of flags that arrive before J's latest completion but start after
// J; J's parent is the earliest-deadline member of X(J). Lemma 4.7 proves
// the graph is a forest, and Lemma 4.10 charges each tree to a disjoint
// chunk of OPT. This module reconstructs the forest from a Profit run so
// examples/tests can inspect and display the proof object.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/instance.h"
#include "schedulers/profit.h"

namespace fjs {

struct FlagForest {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  struct Node {
    JobId job = kInvalidJob;
    std::size_t parent = kNoParent;     ///< index into nodes
    std::vector<std::size_t> children;  ///< indices into nodes
  };

  /// Nodes in flag-designation (= starting-deadline) order.
  std::vector<Node> nodes;

  std::size_t tree_count() const;
  /// Longest root-to-leaf edge count over all trees (0 for single nodes).
  std::size_t height() const;
  /// Indented rendering, one tree per block.
  std::string to_string(const Instance& instance) const;
};

/// Builds the forest from a finished Profit run's flag history.
FlagForest build_flag_forest(
    const Instance& instance,
    const std::vector<ProfitScheduler::FlagInfo>& flags);

}  // namespace fjs
