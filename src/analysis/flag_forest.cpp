#include "analysis/flag_forest.h"

#include <algorithm>
#include <sstream>

#include "support/assert.h"

namespace fjs {

FlagForest build_flag_forest(
    const Instance& instance,
    const std::vector<ProfitScheduler::FlagInfo>& flags) {
  FlagForest forest;
  forest.nodes.resize(flags.size());
  for (std::size_t i = 0; i < flags.size(); ++i) {
    forest.nodes[i].job = flags[i].id;
  }
  for (std::size_t i = 0; i < flags.size(); ++i) {
    const Job& ji = instance.job(flags[i].id);
    std::size_t best = FlagForest::kNoParent;
    for (std::size_t j = 0; j < flags.size(); ++j) {
      if (j == i) {
        continue;
      }
      const Job& jj = instance.job(flags[j].id);
      // jj ∈ X(ji): arrives before ji completes at the latest, and starts
      // (at its deadline) after ji does.
      if (jj.arrival < ji.latest_completion() && ji.deadline < jj.deadline) {
        if (best == FlagForest::kNoParent ||
            jj.deadline < instance.job(flags[best].id).deadline) {
          best = j;
        }
      }
    }
    forest.nodes[i].parent = best;
    if (best != FlagForest::kNoParent) {
      forest.nodes[best].children.push_back(i);
    }
  }
  // Lemma 4.7 sanity: parent chains must terminate (deadlines strictly
  // increase along edges, so a cycle is impossible).
  for (std::size_t i = 0; i < forest.nodes.size(); ++i) {
    std::size_t hops = 0;
    for (std::size_t cur = i; forest.nodes[cur].parent != FlagForest::kNoParent;
         cur = forest.nodes[cur].parent) {
      FJS_CHECK(++hops <= forest.nodes.size(),
                "flag forest: cycle detected (Lemma 4.7 violated)");
    }
  }
  return forest;
}

std::size_t FlagForest::tree_count() const {
  std::size_t roots = 0;
  for (const Node& node : nodes) {
    roots += node.parent == kNoParent ? 1 : 0;
  }
  return roots;
}

std::size_t FlagForest::height() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::size_t depth = 0;
    for (std::size_t cur = i; nodes[cur].parent != kNoParent;
         cur = nodes[cur].parent) {
      ++depth;
    }
    best = std::max(best, depth);
  }
  return best;
}

std::string FlagForest::to_string(const Instance& instance) const {
  std::ostringstream os;
  auto print_subtree = [&](auto&& self, std::size_t index,
                           std::size_t depth) -> void {
    const Job& job = instance.job(nodes[index].job);
    os << std::string(2 * depth, ' ') << job.to_string() << '\n';
    for (const std::size_t child : nodes[index].children) {
      self(self, child, depth + 1);
    }
  };
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].parent == kNoParent) {
      print_subtree(print_subtree, i, 0);
    }
  }
  return os.str();
}

}  // namespace fjs
