// ASCII Gantt rendering of schedules — the examples' visualization layer.
#pragma once

#include <string>

#include "core/instance.h"
#include "core/schedule.h"

namespace fjs {

struct GanttOptions {
  /// Number of character columns for the time axis.
  std::size_t width = 72;
  /// Cap on rendered job rows (large instances render the first rows and
  /// an ellipsis); the span row always covers the whole instance.
  std::size_t max_rows = 40;
};

/// Renders one row per job (`#` = running) plus a final SPAN row marking
/// the union of active intervals, with a time axis in units.
///
///   J0     |##....| [0, 2)
///   J1     |..##..| [2, 4)
///   span   |####..|
std::string render_gantt(const Instance& instance, const Schedule& schedule,
                         GanttOptions options = {});

}  // namespace fjs
