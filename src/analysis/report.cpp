#include "analysis/report.h"

#include <algorithm>
#include <sstream>

#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {

TimelineReport analyze_timeline(const Instance& instance,
                                const Schedule& schedule) {
  FJS_REQUIRE(!instance.empty(), "analyze_timeline: empty instance");
  schedule.validate(instance);

  TimelineReport report;
  const IntervalSet active = schedule.active_set(instance);
  report.span = active.measure();
  report.horizon = active.upper() - active.lower();
  report.busy_fraction = time_ratio(report.span, report.horizon);

  for (const Interval& component : active.components()) {
    BusyPeriod period;
    period.interval = component;
    for (JobId id = 0; id < instance.size(); ++id) {
      if (schedule.active_interval(instance, id).overlaps(component)) {
        period.jobs.push_back(id);
      }
    }
    // Peak concurrency inside this component via the global profile.
    period.peak_concurrency = 0;
    for (const auto& [t, c] : schedule.concurrency_profile(instance)) {
      if (component.contains(t)) {
        period.peak_concurrency = std::max(period.peak_concurrency, c);
      }
    }
    report.busy_periods.push_back(std::move(period));
  }

  report.longest_idle = Time::zero();
  for (std::size_t i = 1; i < report.busy_periods.size(); ++i) {
    const Interval gap(report.busy_periods[i - 1].interval.hi,
                       report.busy_periods[i].interval.lo);
    report.idle_gaps.push_back(gap);
    report.longest_idle = std::max(report.longest_idle, gap.length());
  }

  std::size_t peak = schedule.max_concurrency(instance);
  if (peak > 0 && report.span > Time::zero()) {
    report.packing_efficiency =
        time_ratio(instance.total_work(), report.span) /
        static_cast<double>(peak);
  }
  return report;
}

std::string TimelineReport::to_string() const {
  std::ostringstream os;
  os << "busy periods: " << busy_periods.size() << ", span "
     << span.to_string() << " over horizon " << horizon.to_string()
     << " (busy fraction " << format_double(busy_fraction, 3) << ")\n";
  for (std::size_t i = 0; i < busy_periods.size(); ++i) {
    const BusyPeriod& p = busy_periods[i];
    os << "  " << p.interval.to_string() << ": " << p.jobs.size()
       << " jobs, peak concurrency " << p.peak_concurrency << '\n';
  }
  if (!idle_gaps.empty()) {
    os << "longest idle gap: " << longest_idle.to_string() << '\n';
  }
  os << "packing efficiency: " << format_double(packing_efficiency, 3)
     << '\n';
  return os.str();
}

}  // namespace fjs
