// Busy-period analysis: decompose a schedule's timeline into busy and idle
// segments and derive the operational quantities the paper's motivation
// talks about (server-on time, idle gaps, utilization).
#pragma once

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/interval_set.h"
#include "core/schedule.h"

namespace fjs {

struct BusyPeriod {
  Interval interval;
  /// Jobs whose active interval intersects this busy period.
  std::vector<JobId> jobs;
  /// Peak concurrency inside the period.
  std::size_t peak_concurrency = 0;
};

struct TimelineReport {
  std::vector<BusyPeriod> busy_periods;
  /// Gaps between consecutive busy periods.
  std::vector<Interval> idle_gaps;
  Time span;           ///< Σ busy period lengths (the objective)
  Time horizon;        ///< last completion − first start
  Time longest_idle;   ///< longest internal gap (zero if none)
  /// total work / (span × peak overall concurrency): how well the span is
  /// filled, in [0, 1].
  double packing_efficiency = 0.0;
  /// span / horizon in (0, 1]: 1 means one contiguous busy period.
  double busy_fraction = 0.0;

  std::string to_string() const;
};

/// Builds the report; requires a complete, valid schedule and a non-empty
/// instance.
TimelineReport analyze_timeline(const Instance& instance,
                                const Schedule& schedule);

}  // namespace fjs
