#include "analysis/gantt.h"

#include <algorithm>
#include <sstream>

#include "core/interval_set.h"
#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {
namespace {

/// Maps a time to a column in [0, width], rounding half-filled cells in.
std::size_t column_of(Time t, Time origin, Time horizon, std::size_t width) {
  if (horizon <= origin) {
    return 0;
  }
  const double frac = static_cast<double>((t - origin).ticks()) /
                      static_cast<double>((horizon - origin).ticks());
  const auto col = static_cast<std::ptrdiff_t>(frac *
                                               static_cast<double>(width));
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(col, 0, static_cast<std::ptrdiff_t>(width)));
}

void paint(std::string& row, std::size_t from, std::size_t to, char mark) {
  if (to <= from && to < row.size()) {
    to = from + 1;  // never drop a non-empty interval below one cell
  }
  for (std::size_t c = from; c < to && c < row.size(); ++c) {
    row[c] = mark;
  }
}

}  // namespace

std::string render_gantt(const Instance& instance, const Schedule& schedule,
                         GanttOptions options) {
  FJS_REQUIRE(options.width >= 8, "gantt: width too small");
  FJS_REQUIRE(instance.size() == schedule.size(),
              "gantt: instance/schedule size mismatch");
  if (instance.empty()) {
    return "(empty instance)\n";
  }
  schedule.validate(instance);

  const Time origin = std::min(instance.earliest_arrival(),
                               schedule.active_set(instance).lower());
  Time horizon = origin;
  for (JobId id = 0; id < instance.size(); ++id) {
    horizon = std::max(horizon, schedule.active_interval(instance, id).hi);
  }
  if (horizon == origin) {
    horizon = origin + Time(1);
  }

  std::size_t label_width = 5;
  for (JobId id = 0; id < instance.size(); ++id) {
    label_width = std::max(label_width, 1 + std::to_string(id).size());
  }

  std::ostringstream os;
  const std::size_t rows = std::min<std::size_t>(instance.size(),
                                                 options.max_rows);
  for (JobId id = 0; id < rows; ++id) {
    const Interval iv = schedule.active_interval(instance, id);
    std::string row(options.width, '.');
    paint(row, column_of(iv.lo, origin, horizon, options.width),
          column_of(iv.hi, origin, horizon, options.width), '#');
    os << pad_right("J" + std::to_string(id), label_width) << '|' << row
       << "| " << iv.to_string() << '\n';
  }
  if (rows < instance.size()) {
    os << pad_right("...", label_width) << '(' << (instance.size() - rows)
       << " more jobs)\n";
  }

  std::string span_row(options.width, '.');
  const IntervalSet active = schedule.active_set(instance);
  for (const Interval& c : active.components()) {
    paint(span_row, column_of(c.lo, origin, horizon, options.width),
          column_of(c.hi, origin, horizon, options.width), '#');
  }
  os << pad_right("span", label_width) << '|' << span_row << "| measure "
     << active.measure().to_string() << '\n';
  os << pad_right("", label_width) << ' ' << origin.to_string()
     << std::string(options.width > 16 ? options.width - 16 : 1, ' ')
     << horizon.to_string() << '\n';
  return os.str();
}

}  // namespace fjs
