// Descriptive statistics of an instance plus the paper's a-priori
// guarantees for it — what a user wants to see before choosing a
// scheduler. Used by fjs_cli.
#pragma once

#include <string>

#include "core/instance.h"
#include "support/stats.h"

namespace fjs {

struct InstanceStats {
  std::size_t jobs = 0;
  double mu = 1.0;             ///< max/min length ratio
  Summary lengths;             ///< in units
  Summary laxities;            ///< in units
  Summary laxity_over_length;  ///< laxity expressed in job lengths
  Time total_work;
  Time arrival_horizon;        ///< last arrival − first arrival
  /// total work / (latest completion − earliest arrival): offered load.
  double load_factor = 0.0;
  /// Fraction of jobs with zero laxity (rigid).
  double rigid_fraction = 0.0;

  std::string to_string() const;
};

InstanceStats compute_instance_stats(InstanceView view);
inline InstanceStats compute_instance_stats(const Instance& instance) {
  return compute_instance_stats(instance.view());
}

/// The paper's worst-case guarantees evaluated for this instance's μ:
/// one line per scheduler ("batch+: span <= (mu+1)·OPT = 5.0·OPT", ...).
std::string guarantee_table(const Instance& instance);

}  // namespace fjs
