#include "analysis/svg.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "core/interval_set.h"
#include "support/assert.h"
#include "support/string_util.h"

namespace fjs {
namespace {

/// Maps time to x pixel.
double x_of(Time t, Time origin, Time horizon, int width) {
  return static_cast<double>((t - origin).ticks()) /
         static_cast<double>((horizon - origin).ticks()) *
         static_cast<double>(width);
}

void rect(std::ostream& os, double x, double y, double w, double h,
          const std::string& fill, const std::string& extra = "") {
  os << "  <rect x=\"" << format_double(x, 2) << "\" y=\""
     << format_double(y, 2) << "\" width=\""
     << format_double(std::max(w, 0.75), 2) << "\" height=\""
     << format_double(h, 2) << "\" fill=\"" << fill << "\"" << extra
     << "/>\n";
}

}  // namespace

std::string render_svg_timeline(const Instance& instance,
                                const Schedule& schedule,
                                SvgOptions options) {
  FJS_REQUIRE(options.width >= 100, "svg: width too small");
  FJS_REQUIRE(options.lane_height >= 6, "svg: lane height too small");
  schedule.validate(instance);

  const int lanes =
      static_cast<int>(std::min<std::size_t>(instance.size(),
                                             static_cast<std::size_t>(
                                                 options.max_lanes)));
  const int height = (lanes + 2) * options.lane_height + 24;

  Time origin = Time::max();
  Time horizon = Time::min();
  for (JobId id = 0; id < instance.size(); ++id) {
    const Job& j = instance.job(id);
    origin = std::min({origin, j.arrival,
                       schedule.active_interval(instance, id).lo});
    horizon = std::max(horizon, std::max(j.latest_completion(),
                                         schedule.active_interval(instance, id).hi));
  }
  if (instance.empty() || horizon <= origin) {
    origin = Time::zero();
    horizon = Time(1);
  }

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
     << "\" height=\"" << height << "\" viewBox=\"0 0 " << options.width
     << ' ' << height << "\">\n";
  os << "  <style>text{font:10px monospace;fill:#444}</style>\n";

  const auto lane_y = [&](int lane) {
    return static_cast<double>(8 + lane * options.lane_height);
  };
  for (int lane = 0; lane < lanes; ++lane) {
    const auto id = static_cast<JobId>(lane);
    const Job& j = instance.job(id);
    const double y = lane_y(lane);
    const double h = static_cast<double>(options.lane_height) - 3.0;
    // Feasible window backdrop [arrival, deadline + p).
    rect(os, x_of(j.arrival, origin, horizon, options.width), y,
         x_of(j.latest_completion(), origin, horizon, options.width) -
             x_of(j.arrival, origin, horizon, options.width),
         h, options.window_color);
    // Active interval.
    const Interval iv = schedule.active_interval(instance, id);
    rect(os, x_of(iv.lo, origin, horizon, options.width), y,
         x_of(iv.hi, origin, horizon, options.width) -
             x_of(iv.lo, origin, horizon, options.width),
         h, options.job_color,
         " data-job=\"" + std::to_string(id) + "\"");
  }
  if (static_cast<std::size_t>(lanes) < instance.size()) {
    os << "  <text x=\"4\" y=\"" << lane_y(lanes) + 10 << "\">(+"
       << instance.size() - static_cast<std::size_t>(lanes)
       << " more jobs)</text>\n";
  }

  // Span bar.
  const double span_y = lane_y(lanes + 1);
  const IntervalSet active = schedule.active_set(instance);
  for (const Interval& component : active.components()) {
    rect(os, x_of(component.lo, origin, horizon, options.width), span_y,
         x_of(component.hi, origin, horizon, options.width) -
             x_of(component.lo, origin, horizon, options.width),
         static_cast<double>(options.lane_height) - 3.0, options.span_color,
         " data-role=\"span\"");
  }
  os << "  <text x=\"4\" y=\"" << height - 6 << "\">span "
     << active.measure().to_string() << " | " << instance.size()
     << " jobs | [" << origin.to_string() << ", " << horizon.to_string()
     << ")</text>\n";
  os << "</svg>\n";
  return os.str();
}

bool write_svg_timeline(const Instance& instance, const Schedule& schedule,
                        const std::string& path, SvgOptions options) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << render_svg_timeline(instance, schedule, options);
  return static_cast<bool>(out);
}

}  // namespace fjs
