#include "analysis/instance_stats.h"

#include <cmath>
#include <sstream>

#include "schedulers/classify_by_duration.h"
#include "schedulers/profit.h"
#include "support/assert.h"
#include "support/string_util.h"
#include "support/table.h"

namespace fjs {

InstanceStats compute_instance_stats(InstanceView view) {
  FJS_REQUIRE(!view.empty(), "instance stats: empty instance");
  InstanceStats stats;
  stats.jobs = view.size();
  stats.mu = view.mu();
  // Saturating sum, unlike Instance::total_work(): stats are descriptive
  // output and must survive adversarial-magnitude instances (near-max
  // lengths) where the checked sum would abort the whole report.
  stats.total_work = view.total_work_saturating();
  std::size_t rigid = 0;
  Time first_arrival = view.earliest_arrival();
  Time last_arrival = first_arrival;
  for (JobId id = 0; id < view.size(); ++id) {
    const Job j = view.job(id);
    stats.lengths.add(j.length.to_units());
    stats.laxities.add(j.laxity().to_units());
    stats.laxity_over_length.add(time_ratio(j.laxity(), j.length));
    if (j.laxity() == Time::zero()) {
      ++rigid;
    }
    last_arrival = std::max(last_arrival, j.arrival);
  }
  // Saturating: arrivals may sit anywhere in [min, max] (shift transforms
  // go negative), so these differences can exceed the representable range.
  stats.arrival_horizon = last_arrival.saturating_sub(first_arrival);
  const Time window = view.latest_completion().saturating_sub(first_arrival);
  stats.load_factor =
      window > Time::zero() ? time_ratio(stats.total_work, window) : 0.0;
  stats.rigid_fraction =
      static_cast<double>(rigid) / static_cast<double>(view.size());
  return stats;
}

std::string InstanceStats::to_string() const {
  std::ostringstream os;
  os << jobs << " jobs, mu=" << format_double(mu, 3) << ", total work "
     << total_work.to_string() << " over arrival horizon "
     << arrival_horizon.to_string() << '\n'
     << "  lengths:  " << lengths.to_string() << '\n'
     << "  laxities: " << laxities.to_string() << " ("
     << format_double(rigid_fraction * 100.0, 1) << "% rigid)\n"
     << "  laxity/length: " << laxity_over_length.to_string() << '\n'
     << "  load factor: " << format_double(load_factor, 3) << '\n';
  return os.str();
}

std::string guarantee_table(const Instance& instance) {
  FJS_REQUIRE(!instance.empty(), "guarantee table: empty instance");
  const double mu = instance.mu();
  const double alpha = CdbScheduler::optimal_alpha();
  const double k = ProfitScheduler::optimal_k();
  Table table({"scheduler", "model", "worst-case span vs OPT"});
  table.add_row({"eager", "non-clairvoyant", "unbounded"});
  table.add_row({"lazy", "non-clairvoyant", "unbounded"});
  table.add_row({"batch", "non-clairvoyant",
                 "<= " + format_double(2.0 * mu + 1.0, 3) + " (2mu+1)"});
  table.add_row({"batch+", "non-clairvoyant",
                 "<= " + format_double(mu + 1.0, 3) + " (mu+1, tight)"});
  table.add_row({"cdb", "clairvoyant",
                 "<= " + format_double(3.0 * alpha + 4.0 + 2.0 / (alpha - 1.0),
                                       3) +
                     " (7+2*sqrt(6))"});
  table.add_row({"profit", "clairvoyant",
                 "<= " + format_double(2.0 * k + 2.0 + 1.0 / (k - 1.0), 3) +
                     " (4+2*sqrt(2))"});
  table.add_row({"(any deterministic)", "non-clairvoyant",
                 ">= " + format_double(mu, 3) + " (Thm 3.3)"});
  table.add_row({"(any deterministic)", "clairvoyant",
                 ">= 1.618 (Thm 4.1)"});
  return table.render();
}

}  // namespace fjs
