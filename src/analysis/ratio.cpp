#include "analysis/ratio.h"

#include <algorithm>

#include "offline/annealing.h"
#include "offline/heuristic.h"
#include "offline/lower_bound.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/assert.h"

namespace fjs {

RatioBracket measure_ratio(const Instance& instance,
                           OnlineScheduler& scheduler, bool clairvoyant,
                           OptMethod method, ExactOptions exact_options,
                           std::size_t bracket_anneal_iterations) {
  FJS_REQUIRE(!instance.empty(), "measure_ratio: empty instance");
  RatioBracket bracket;
  bracket.online_span = simulate_span(instance, scheduler, clairvoyant);
  if (method == OptMethod::kExact) {
    const Time opt = exact_optimal_span(instance, exact_options);
    bracket.opt_upper = opt;
    bracket.opt_lower = opt;
  } else {
    bracket.opt_upper = heuristic_span(instance);
    if (bracket_anneal_iterations > 0) {
      // A second, independent feasible-schedule construction; the min is
      // still an upper bound on OPT and tightens the bracket (bench E12).
      AnnealingOptions anneal_opts;
      anneal_opts.iterations = bracket_anneal_iterations;
      bracket.opt_upper = std::min(
          bracket.opt_upper, anneal_schedule(instance, anneal_opts).span);
    }
    bracket.opt_lower = best_lower_bound(instance);
    FJS_CHECK(bracket.opt_lower <= bracket.opt_upper,
              "measure_ratio: lower bound exceeds heuristic span");
  }
  return bracket;
}

RatioBracket measure_ratio(const Instance& instance,
                           const std::string& scheduler_key, OptMethod method,
                           ExactOptions exact_options,
                           std::size_t bracket_anneal_iterations) {
  const auto scheduler = make_scheduler(scheduler_key);
  return measure_ratio(instance, *scheduler,
                       scheduler->requires_clairvoyance(), method,
                       exact_options, bracket_anneal_iterations);
}

}  // namespace fjs
