#include "analysis/convergence.h"

#include <cmath>

#include "support/assert.h"

namespace fjs {

AsymptoteFit fit_asymptote(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  FJS_REQUIRE(xs.size() == ys.size(), "fit_asymptote: length mismatch");
  FJS_REQUIRE(xs.size() >= 3, "fit_asymptote: need at least 3 points");
  const auto n = static_cast<double>(xs.size());

  // Ordinary least squares of y on u = 1/x.
  double su = 0.0;
  double sy = 0.0;
  double suu = 0.0;
  double suy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    FJS_REQUIRE(xs[i] > 0.0, "fit_asymptote: x must be positive");
    const double u = 1.0 / xs[i];
    su += u;
    sy += ys[i];
    suu += u * u;
    suy += u * ys[i];
  }
  const double denom = n * suu - su * su;
  FJS_REQUIRE(std::abs(denom) > 1e-300, "fit_asymptote: degenerate xs");

  AsymptoteFit fit;
  fit.slope = (n * suy - su * sy) / denom;
  fit.limit = (sy - fit.slope * su) / n;

  const double y_mean = sy / n;
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double predicted = fit.limit + fit.slope / xs[i];
    ss_tot += (ys[i] - y_mean) * (ys[i] - y_mean);
    ss_res += (ys[i] - predicted) * (ys[i] - predicted);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace fjs
