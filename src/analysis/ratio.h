// Ratio harness: measure a scheduler's span against the offline optimum.
//
// On instances small enough for the exact solver the ratio is exact.
// Otherwise we report a bracket
//   online/heuristic  <=  true ratio  <=  online/lower_bound,
// whose left end is conservative (the heuristic span upper-bounds OPT).
#pragma once

#include <string>

#include "core/instance.h"
#include "offline/exact.h"
#include "sim/scheduler.h"

namespace fjs {

struct RatioBracket {
  Time online_span;
  /// Span of a feasible offline schedule (exact optimum, heuristic, or a
  /// construction-provided reference) — an upper bound on OPT.
  Time opt_upper;
  /// Certified lower bound on OPT (equals opt_upper when exact).
  Time opt_lower;

  /// Conservative estimate: the scheduler's ratio is at least this.
  double ratio_lower() const { return time_ratio(online_span, opt_upper); }
  /// The scheduler's ratio is at most this.
  double ratio_upper() const { return time_ratio(online_span, opt_lower); }
  bool exact() const { return opt_upper == opt_lower; }
};

enum class OptMethod {
  kExact,    ///< exact B&B — requires a small integral instance
  kBracket,  ///< heuristic upper bound + certified lower bound
};

/// Runs the scheduler on the instance and compares with OPT.
/// `bracket_anneal_iterations` folds a simulated anneal into the bracket's
/// OPT upper bound (min with the heuristic); off by default — matching
/// SweepOptions — because on the standard suite the heuristic never lost
/// to the anneal and the anneal dominated bracket cost.
RatioBracket measure_ratio(const Instance& instance,
                           OnlineScheduler& scheduler, bool clairvoyant,
                           OptMethod method, ExactOptions exact_options = {},
                           std::size_t bracket_anneal_iterations = 0);

/// Registry-key convenience (clairvoyance inferred from the spec).
RatioBracket measure_ratio(const Instance& instance,
                           const std::string& scheduler_key, OptMethod method,
                           ExactOptions exact_options = {},
                           std::size_t bracket_anneal_iterations = 0);

}  // namespace fjs
