// Self-contained SVG timeline export — a shareable visual artifact of a
// schedule (one lane per job, a span bar underneath).
#pragma once

#include <string>

#include "core/instance.h"
#include "core/schedule.h"

namespace fjs {

struct SvgOptions {
  int width = 960;        ///< drawing width in px
  int lane_height = 14;   ///< px per job lane
  int max_lanes = 64;     ///< jobs beyond this are folded into one lane
  /// Fill color per job lane and for the span bar.
  std::string job_color = "#4878a8";
  std::string window_color = "#d8e4ee";  ///< [arrival, deadline+p) backdrop
  std::string span_color = "#303030";
};

/// Renders the schedule as an SVG document (returned as a string). Each
/// job lane shows its feasible window as a light backdrop and its active
/// interval as a solid bar; the bottom lane shows the span.
std::string render_svg_timeline(const Instance& instance,
                                const Schedule& schedule,
                                SvgOptions options = {});

/// Convenience: writes render_svg_timeline to a file. Returns false on
/// I/O failure.
bool write_svg_timeline(const Instance& instance, const Schedule& schedule,
                        const std::string& path, SvgOptions options = {});

}  // namespace fjs
