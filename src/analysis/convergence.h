// Asymptote estimation for ratio families: the tightness constructions
// approach their limits like L − c/m, so a linear fit of ratio against
// 1/m yields the limit as the intercept. Used by E2/E3 to report the
// empirical limit next to the paper's closed form.
#pragma once

#include <vector>

namespace fjs {

struct AsymptoteFit {
  /// Estimated limit as the parameter goes to infinity (the intercept of
  /// the least-squares fit of y against 1/x).
  double limit = 0.0;
  /// First-order coefficient: y ≈ limit + slope/x.
  double slope = 0.0;
  /// Coefficient of determination of the fit in [0, 1].
  double r_squared = 0.0;
};

/// Fits y = limit + slope·(1/x). Requires >= 3 points, all x > 0 and
/// distinct.
AsymptoteFit fit_asymptote(const std::vector<double>& xs,
                           const std::vector<double>& ys);

}  // namespace fjs
