file(REMOVE_RECURSE
  "CMakeFiles/test_sched_misc.dir/test_sched_misc.cpp.o"
  "CMakeFiles/test_sched_misc.dir/test_sched_misc.cpp.o.d"
  "test_sched_misc"
  "test_sched_misc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
