# Empty compiler generated dependencies file for test_sched_misc.
# This may be replaced when dependencies are built.
