file(REMOVE_RECURSE
  "CMakeFiles/test_sched_cdb.dir/test_sched_cdb.cpp.o"
  "CMakeFiles/test_sched_cdb.dir/test_sched_cdb.cpp.o.d"
  "test_sched_cdb"
  "test_sched_cdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_cdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
