# Empty compiler generated dependencies file for test_conformance_certify.
# This may be replaced when dependencies are built.
