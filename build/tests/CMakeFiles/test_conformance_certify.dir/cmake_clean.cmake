file(REMOVE_RECURSE
  "CMakeFiles/test_conformance_certify.dir/test_conformance_certify.cpp.o"
  "CMakeFiles/test_conformance_certify.dir/test_conformance_certify.cpp.o.d"
  "test_conformance_certify"
  "test_conformance_certify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conformance_certify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
