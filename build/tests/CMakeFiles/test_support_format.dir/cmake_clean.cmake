file(REMOVE_RECURSE
  "CMakeFiles/test_support_format.dir/test_support_format.cpp.o"
  "CMakeFiles/test_support_format.dir/test_support_format.cpp.o.d"
  "test_support_format"
  "test_support_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
