# Empty dependencies file for test_support_format.
# This may be replaced when dependencies are built.
