file(REMOVE_RECURSE
  "CMakeFiles/test_dbp.dir/test_dbp.cpp.o"
  "CMakeFiles/test_dbp.dir/test_dbp.cpp.o.d"
  "test_dbp"
  "test_dbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
