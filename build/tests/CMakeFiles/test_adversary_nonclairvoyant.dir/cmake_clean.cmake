file(REMOVE_RECURSE
  "CMakeFiles/test_adversary_nonclairvoyant.dir/test_adversary_nonclairvoyant.cpp.o"
  "CMakeFiles/test_adversary_nonclairvoyant.dir/test_adversary_nonclairvoyant.cpp.o.d"
  "test_adversary_nonclairvoyant"
  "test_adversary_nonclairvoyant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adversary_nonclairvoyant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
