# Empty compiler generated dependencies file for test_adversary_nonclairvoyant.
# This may be replaced when dependencies are built.
