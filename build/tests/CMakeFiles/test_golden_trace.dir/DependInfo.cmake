
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_golden_trace.cpp" "tests/CMakeFiles/test_golden_trace.dir/test_golden_trace.cpp.o" "gcc" "tests/CMakeFiles/test_golden_trace.dir/test_golden_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/fjs_test_helpers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fjs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fjs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/schedulers/CMakeFiles/fjs_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/fjs_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/adversary/CMakeFiles/fjs_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fjs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dbp/CMakeFiles/fjs_dbp.dir/DependInfo.cmake"
  "/root/repo/build/src/busytime/CMakeFiles/fjs_busytime.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fjs_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
