# Empty compiler generated dependencies file for test_busytime.
# This may be replaced when dependencies are built.
