file(REMOVE_RECURSE
  "CMakeFiles/test_busytime.dir/test_busytime.cpp.o"
  "CMakeFiles/test_busytime.dir/test_busytime.cpp.o.d"
  "test_busytime"
  "test_busytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_busytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
