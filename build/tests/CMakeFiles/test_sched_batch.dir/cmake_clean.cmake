file(REMOVE_RECURSE
  "CMakeFiles/test_sched_batch.dir/test_sched_batch.cpp.o"
  "CMakeFiles/test_sched_batch.dir/test_sched_batch.cpp.o.d"
  "test_sched_batch"
  "test_sched_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
