# Empty compiler generated dependencies file for test_sched_batch.
# This may be replaced when dependencies are built.
