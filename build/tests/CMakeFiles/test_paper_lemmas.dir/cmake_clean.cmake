file(REMOVE_RECURSE
  "CMakeFiles/test_paper_lemmas.dir/test_paper_lemmas.cpp.o"
  "CMakeFiles/test_paper_lemmas.dir/test_paper_lemmas.cpp.o.d"
  "test_paper_lemmas"
  "test_paper_lemmas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
