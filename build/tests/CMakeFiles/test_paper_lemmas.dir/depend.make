# Empty dependencies file for test_paper_lemmas.
# This may be replaced when dependencies are built.
