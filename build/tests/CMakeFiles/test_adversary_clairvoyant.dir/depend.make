# Empty dependencies file for test_adversary_clairvoyant.
# This may be replaced when dependencies are built.
