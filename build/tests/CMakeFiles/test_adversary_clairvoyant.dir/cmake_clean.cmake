file(REMOVE_RECURSE
  "CMakeFiles/test_adversary_clairvoyant.dir/test_adversary_clairvoyant.cpp.o"
  "CMakeFiles/test_adversary_clairvoyant.dir/test_adversary_clairvoyant.cpp.o.d"
  "test_adversary_clairvoyant"
  "test_adversary_clairvoyant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adversary_clairvoyant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
