file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_extras.dir/test_analysis_extras.cpp.o"
  "CMakeFiles/test_analysis_extras.dir/test_analysis_extras.cpp.o.d"
  "test_analysis_extras"
  "test_analysis_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
