# Empty dependencies file for test_analysis_extras.
# This may be replaced when dependencies are built.
