# Empty dependencies file for test_sched_profit.
# This may be replaced when dependencies are built.
