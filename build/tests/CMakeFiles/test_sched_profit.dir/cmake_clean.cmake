file(REMOVE_RECURSE
  "CMakeFiles/test_sched_profit.dir/test_sched_profit.cpp.o"
  "CMakeFiles/test_sched_profit.dir/test_sched_profit.cpp.o.d"
  "test_sched_profit"
  "test_sched_profit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_profit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
