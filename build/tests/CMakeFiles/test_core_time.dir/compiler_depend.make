# Empty compiler generated dependencies file for test_core_time.
# This may be replaced when dependencies are built.
