file(REMOVE_RECURSE
  "CMakeFiles/test_core_time.dir/test_core_time.cpp.o"
  "CMakeFiles/test_core_time.dir/test_core_time.cpp.o.d"
  "test_core_time"
  "test_core_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
