file(REMOVE_RECURSE
  "CMakeFiles/fjs_test_helpers.dir/helpers.cpp.o"
  "CMakeFiles/fjs_test_helpers.dir/helpers.cpp.o.d"
  "libfjs_test_helpers.a"
  "libfjs_test_helpers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_test_helpers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
