# Empty dependencies file for fjs_test_helpers.
# This may be replaced when dependencies are built.
