file(REMOVE_RECURSE
  "libfjs_test_helpers.a"
)
