file(REMOVE_RECURSE
  "CMakeFiles/test_core_interval_set.dir/test_core_interval_set.cpp.o"
  "CMakeFiles/test_core_interval_set.dir/test_core_interval_set.cpp.o.d"
  "test_core_interval_set"
  "test_core_interval_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_interval_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
