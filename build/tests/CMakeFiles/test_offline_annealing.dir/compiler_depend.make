# Empty compiler generated dependencies file for test_offline_annealing.
# This may be replaced when dependencies are built.
