file(REMOVE_RECURSE
  "CMakeFiles/test_offline_annealing.dir/test_offline_annealing.cpp.o"
  "CMakeFiles/test_offline_annealing.dir/test_offline_annealing.cpp.o.d"
  "test_offline_annealing"
  "test_offline_annealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offline_annealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
