file(REMOVE_RECURSE
  "CMakeFiles/test_engine_errors.dir/test_engine_errors.cpp.o"
  "CMakeFiles/test_engine_errors.dir/test_engine_errors.cpp.o.d"
  "test_engine_errors"
  "test_engine_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
