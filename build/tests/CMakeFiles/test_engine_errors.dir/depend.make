# Empty dependencies file for test_engine_errors.
# This may be replaced when dependencies are built.
