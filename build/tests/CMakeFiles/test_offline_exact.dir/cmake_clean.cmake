file(REMOVE_RECURSE
  "CMakeFiles/test_offline_exact.dir/test_offline_exact.cpp.o"
  "CMakeFiles/test_offline_exact.dir/test_offline_exact.cpp.o.d"
  "test_offline_exact"
  "test_offline_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offline_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
