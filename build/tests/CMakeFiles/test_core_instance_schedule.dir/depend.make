# Empty dependencies file for test_core_instance_schedule.
# This may be replaced when dependencies are built.
