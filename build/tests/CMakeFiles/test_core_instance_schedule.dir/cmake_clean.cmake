file(REMOVE_RECURSE
  "CMakeFiles/test_core_instance_schedule.dir/test_core_instance_schedule.cpp.o"
  "CMakeFiles/test_core_instance_schedule.dir/test_core_instance_schedule.cpp.o.d"
  "test_core_instance_schedule"
  "test_core_instance_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_instance_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
