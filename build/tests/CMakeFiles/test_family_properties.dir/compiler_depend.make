# Empty compiler generated dependencies file for test_family_properties.
# This may be replaced when dependencies are built.
