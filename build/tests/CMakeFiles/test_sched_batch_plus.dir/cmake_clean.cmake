file(REMOVE_RECURSE
  "CMakeFiles/test_sched_batch_plus.dir/test_sched_batch_plus.cpp.o"
  "CMakeFiles/test_sched_batch_plus.dir/test_sched_batch_plus.cpp.o.d"
  "test_sched_batch_plus"
  "test_sched_batch_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_batch_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
