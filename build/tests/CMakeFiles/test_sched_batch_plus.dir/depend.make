# Empty dependencies file for test_sched_batch_plus.
# This may be replaced when dependencies are built.
