# Empty dependencies file for test_offline_bounds.
# This may be replaced when dependencies are built.
