file(REMOVE_RECURSE
  "CMakeFiles/test_offline_bounds.dir/test_offline_bounds.cpp.o"
  "CMakeFiles/test_offline_bounds.dir/test_offline_bounds.cpp.o.d"
  "test_offline_bounds"
  "test_offline_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offline_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
