# Empty dependencies file for bench_e4_clairvoyant_lb.
# This may be replaced when dependencies are built.
