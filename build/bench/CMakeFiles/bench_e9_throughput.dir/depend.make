# Empty dependencies file for bench_e9_throughput.
# This may be replaced when dependencies are built.
