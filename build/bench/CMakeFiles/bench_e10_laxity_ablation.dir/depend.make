# Empty dependencies file for bench_e10_laxity_ablation.
# This may be replaced when dependencies are built.
