file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_laxity_ablation.dir/bench_e10_laxity_ablation.cpp.o"
  "CMakeFiles/bench_e10_laxity_ablation.dir/bench_e10_laxity_ablation.cpp.o.d"
  "bench_e10_laxity_ablation"
  "bench_e10_laxity_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_laxity_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
