# Empty dependencies file for bench_e2_batch_tightness.
# This may be replaced when dependencies are built.
