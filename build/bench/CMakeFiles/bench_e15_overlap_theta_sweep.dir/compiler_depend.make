# Empty compiler generated dependencies file for bench_e15_overlap_theta_sweep.
# This may be replaced when dependencies are built.
