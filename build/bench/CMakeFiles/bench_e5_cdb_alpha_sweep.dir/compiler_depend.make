# Empty compiler generated dependencies file for bench_e5_cdb_alpha_sweep.
# This may be replaced when dependencies are built.
