file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_cdb_alpha_sweep.dir/bench_e5_cdb_alpha_sweep.cpp.o"
  "CMakeFiles/bench_e5_cdb_alpha_sweep.dir/bench_e5_cdb_alpha_sweep.cpp.o.d"
  "bench_e5_cdb_alpha_sweep"
  "bench_e5_cdb_alpha_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_cdb_alpha_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
