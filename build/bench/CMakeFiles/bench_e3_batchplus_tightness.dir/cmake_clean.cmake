file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_batchplus_tightness.dir/bench_e3_batchplus_tightness.cpp.o"
  "CMakeFiles/bench_e3_batchplus_tightness.dir/bench_e3_batchplus_tightness.cpp.o.d"
  "bench_e3_batchplus_tightness"
  "bench_e3_batchplus_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_batchplus_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
