# Empty compiler generated dependencies file for bench_e3_batchplus_tightness.
# This may be replaced when dependencies are built.
