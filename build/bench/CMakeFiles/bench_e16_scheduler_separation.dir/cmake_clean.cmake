file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_scheduler_separation.dir/bench_e16_scheduler_separation.cpp.o"
  "CMakeFiles/bench_e16_scheduler_separation.dir/bench_e16_scheduler_separation.cpp.o.d"
  "bench_e16_scheduler_separation"
  "bench_e16_scheduler_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_scheduler_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
