# Empty dependencies file for bench_e16_scheduler_separation.
# This may be replaced when dependencies are built.
