# Empty dependencies file for bench_e7_random_workloads.
# This may be replaced when dependencies are built.
