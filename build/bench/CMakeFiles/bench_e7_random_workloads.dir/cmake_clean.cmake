file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_random_workloads.dir/bench_e7_random_workloads.cpp.o"
  "CMakeFiles/bench_e7_random_workloads.dir/bench_e7_random_workloads.cpp.o.d"
  "bench_e7_random_workloads"
  "bench_e7_random_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_random_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
