# Empty compiler generated dependencies file for bench_e14_worst_case_miner.
# This may be replaced when dependencies are built.
