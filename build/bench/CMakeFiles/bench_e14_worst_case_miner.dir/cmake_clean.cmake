file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_worst_case_miner.dir/bench_e14_worst_case_miner.cpp.o"
  "CMakeFiles/bench_e14_worst_case_miner.dir/bench_e14_worst_case_miner.cpp.o.d"
  "bench_e14_worst_case_miner"
  "bench_e14_worst_case_miner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_worst_case_miner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
