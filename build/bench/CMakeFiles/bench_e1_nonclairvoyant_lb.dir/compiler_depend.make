# Empty compiler generated dependencies file for bench_e1_nonclairvoyant_lb.
# This may be replaced when dependencies are built.
