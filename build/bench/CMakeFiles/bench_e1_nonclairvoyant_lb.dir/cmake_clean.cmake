file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_nonclairvoyant_lb.dir/bench_e1_nonclairvoyant_lb.cpp.o"
  "CMakeFiles/bench_e1_nonclairvoyant_lb.dir/bench_e1_nonclairvoyant_lb.cpp.o.d"
  "bench_e1_nonclairvoyant_lb"
  "bench_e1_nonclairvoyant_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_nonclairvoyant_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
