# Empty compiler generated dependencies file for bench_e13_randomization.
# This may be replaced when dependencies are built.
