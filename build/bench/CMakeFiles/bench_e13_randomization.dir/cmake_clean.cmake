file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_randomization.dir/bench_e13_randomization.cpp.o"
  "CMakeFiles/bench_e13_randomization.dir/bench_e13_randomization.cpp.o.d"
  "bench_e13_randomization"
  "bench_e13_randomization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_randomization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
