file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_dbp_extension.dir/bench_e8_dbp_extension.cpp.o"
  "CMakeFiles/bench_e8_dbp_extension.dir/bench_e8_dbp_extension.cpp.o.d"
  "bench_e8_dbp_extension"
  "bench_e8_dbp_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_dbp_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
