# Empty dependencies file for bench_e8_dbp_extension.
# This may be replaced when dependencies are built.
