# Empty dependencies file for bench_e11_busytime_capacity.
# This may be replaced when dependencies are built.
