file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_busytime_capacity.dir/bench_e11_busytime_capacity.cpp.o"
  "CMakeFiles/bench_e11_busytime_capacity.dir/bench_e11_busytime_capacity.cpp.o.d"
  "bench_e11_busytime_capacity"
  "bench_e11_busytime_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_busytime_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
