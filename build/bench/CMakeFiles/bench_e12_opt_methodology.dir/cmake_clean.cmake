file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_opt_methodology.dir/bench_e12_opt_methodology.cpp.o"
  "CMakeFiles/bench_e12_opt_methodology.dir/bench_e12_opt_methodology.cpp.o.d"
  "bench_e12_opt_methodology"
  "bench_e12_opt_methodology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_opt_methodology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
