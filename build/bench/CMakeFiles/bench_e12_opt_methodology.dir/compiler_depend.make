# Empty compiler generated dependencies file for bench_e12_opt_methodology.
# This may be replaced when dependencies are built.
