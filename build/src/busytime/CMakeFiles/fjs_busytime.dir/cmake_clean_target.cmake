file(REMOVE_RECURSE
  "libfjs_busytime.a"
)
