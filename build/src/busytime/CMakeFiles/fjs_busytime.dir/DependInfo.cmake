
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/busytime/busytime.cpp" "src/busytime/CMakeFiles/fjs_busytime.dir/busytime.cpp.o" "gcc" "src/busytime/CMakeFiles/fjs_busytime.dir/busytime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/fjs_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
