file(REMOVE_RECURSE
  "CMakeFiles/fjs_busytime.dir/busytime.cpp.o"
  "CMakeFiles/fjs_busytime.dir/busytime.cpp.o.d"
  "libfjs_busytime.a"
  "libfjs_busytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_busytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
