# Empty dependencies file for fjs_busytime.
# This may be replaced when dependencies are built.
