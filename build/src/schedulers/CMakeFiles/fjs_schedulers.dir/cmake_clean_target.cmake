file(REMOVE_RECURSE
  "libfjs_schedulers.a"
)
