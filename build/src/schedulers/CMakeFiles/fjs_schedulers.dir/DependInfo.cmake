
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedulers/batch.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/batch.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/batch.cpp.o.d"
  "/root/repo/src/schedulers/batch_plus.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/batch_plus.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/batch_plus.cpp.o.d"
  "/root/repo/src/schedulers/classify_by_duration.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/classify_by_duration.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/classify_by_duration.cpp.o.d"
  "/root/repo/src/schedulers/doubler.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/doubler.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/doubler.cpp.o.d"
  "/root/repo/src/schedulers/eager.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/eager.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/eager.cpp.o.d"
  "/root/repo/src/schedulers/lazy.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/lazy.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/lazy.cpp.o.d"
  "/root/repo/src/schedulers/overlap.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/overlap.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/overlap.cpp.o.d"
  "/root/repo/src/schedulers/profit.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/profit.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/profit.cpp.o.d"
  "/root/repo/src/schedulers/randomized.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/randomized.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/randomized.cpp.o.d"
  "/root/repo/src/schedulers/registry.cpp" "src/schedulers/CMakeFiles/fjs_schedulers.dir/registry.cpp.o" "gcc" "src/schedulers/CMakeFiles/fjs_schedulers.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fjs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
