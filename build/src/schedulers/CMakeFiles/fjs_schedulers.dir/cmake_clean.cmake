file(REMOVE_RECURSE
  "CMakeFiles/fjs_schedulers.dir/batch.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/batch.cpp.o.d"
  "CMakeFiles/fjs_schedulers.dir/batch_plus.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/batch_plus.cpp.o.d"
  "CMakeFiles/fjs_schedulers.dir/classify_by_duration.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/classify_by_duration.cpp.o.d"
  "CMakeFiles/fjs_schedulers.dir/doubler.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/doubler.cpp.o.d"
  "CMakeFiles/fjs_schedulers.dir/eager.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/eager.cpp.o.d"
  "CMakeFiles/fjs_schedulers.dir/lazy.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/lazy.cpp.o.d"
  "CMakeFiles/fjs_schedulers.dir/overlap.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/overlap.cpp.o.d"
  "CMakeFiles/fjs_schedulers.dir/profit.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/profit.cpp.o.d"
  "CMakeFiles/fjs_schedulers.dir/randomized.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/randomized.cpp.o.d"
  "CMakeFiles/fjs_schedulers.dir/registry.cpp.o"
  "CMakeFiles/fjs_schedulers.dir/registry.cpp.o.d"
  "libfjs_schedulers.a"
  "libfjs_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
