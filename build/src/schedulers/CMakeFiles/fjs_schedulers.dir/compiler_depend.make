# Empty compiler generated dependencies file for fjs_schedulers.
# This may be replaced when dependencies are built.
