file(REMOVE_RECURSE
  "libfjs_offline.a"
)
