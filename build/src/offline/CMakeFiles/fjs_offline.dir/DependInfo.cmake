
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/annealing.cpp" "src/offline/CMakeFiles/fjs_offline.dir/annealing.cpp.o" "gcc" "src/offline/CMakeFiles/fjs_offline.dir/annealing.cpp.o.d"
  "/root/repo/src/offline/certify.cpp" "src/offline/CMakeFiles/fjs_offline.dir/certify.cpp.o" "gcc" "src/offline/CMakeFiles/fjs_offline.dir/certify.cpp.o.d"
  "/root/repo/src/offline/exact.cpp" "src/offline/CMakeFiles/fjs_offline.dir/exact.cpp.o" "gcc" "src/offline/CMakeFiles/fjs_offline.dir/exact.cpp.o.d"
  "/root/repo/src/offline/heuristic.cpp" "src/offline/CMakeFiles/fjs_offline.dir/heuristic.cpp.o" "gcc" "src/offline/CMakeFiles/fjs_offline.dir/heuristic.cpp.o.d"
  "/root/repo/src/offline/lower_bound.cpp" "src/offline/CMakeFiles/fjs_offline.dir/lower_bound.cpp.o" "gcc" "src/offline/CMakeFiles/fjs_offline.dir/lower_bound.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
