file(REMOVE_RECURSE
  "CMakeFiles/fjs_offline.dir/annealing.cpp.o"
  "CMakeFiles/fjs_offline.dir/annealing.cpp.o.d"
  "CMakeFiles/fjs_offline.dir/certify.cpp.o"
  "CMakeFiles/fjs_offline.dir/certify.cpp.o.d"
  "CMakeFiles/fjs_offline.dir/exact.cpp.o"
  "CMakeFiles/fjs_offline.dir/exact.cpp.o.d"
  "CMakeFiles/fjs_offline.dir/heuristic.cpp.o"
  "CMakeFiles/fjs_offline.dir/heuristic.cpp.o.d"
  "CMakeFiles/fjs_offline.dir/lower_bound.cpp.o"
  "CMakeFiles/fjs_offline.dir/lower_bound.cpp.o.d"
  "libfjs_offline.a"
  "libfjs_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
