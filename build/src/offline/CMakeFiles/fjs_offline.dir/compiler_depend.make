# Empty compiler generated dependencies file for fjs_offline.
# This may be replaced when dependencies are built.
