
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/clairvoyant_lb.cpp" "src/adversary/CMakeFiles/fjs_adversary.dir/clairvoyant_lb.cpp.o" "gcc" "src/adversary/CMakeFiles/fjs_adversary.dir/clairvoyant_lb.cpp.o.d"
  "/root/repo/src/adversary/instance_miner.cpp" "src/adversary/CMakeFiles/fjs_adversary.dir/instance_miner.cpp.o" "gcc" "src/adversary/CMakeFiles/fjs_adversary.dir/instance_miner.cpp.o.d"
  "/root/repo/src/adversary/nonclairvoyant_lb.cpp" "src/adversary/CMakeFiles/fjs_adversary.dir/nonclairvoyant_lb.cpp.o" "gcc" "src/adversary/CMakeFiles/fjs_adversary.dir/nonclairvoyant_lb.cpp.o.d"
  "/root/repo/src/adversary/tightness.cpp" "src/adversary/CMakeFiles/fjs_adversary.dir/tightness.cpp.o" "gcc" "src/adversary/CMakeFiles/fjs_adversary.dir/tightness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fjs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/schedulers/CMakeFiles/fjs_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/fjs_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
