file(REMOVE_RECURSE
  "CMakeFiles/fjs_adversary.dir/clairvoyant_lb.cpp.o"
  "CMakeFiles/fjs_adversary.dir/clairvoyant_lb.cpp.o.d"
  "CMakeFiles/fjs_adversary.dir/instance_miner.cpp.o"
  "CMakeFiles/fjs_adversary.dir/instance_miner.cpp.o.d"
  "CMakeFiles/fjs_adversary.dir/nonclairvoyant_lb.cpp.o"
  "CMakeFiles/fjs_adversary.dir/nonclairvoyant_lb.cpp.o.d"
  "CMakeFiles/fjs_adversary.dir/tightness.cpp.o"
  "CMakeFiles/fjs_adversary.dir/tightness.cpp.o.d"
  "libfjs_adversary.a"
  "libfjs_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
