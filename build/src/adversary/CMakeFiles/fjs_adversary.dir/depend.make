# Empty dependencies file for fjs_adversary.
# This may be replaced when dependencies are built.
