file(REMOVE_RECURSE
  "libfjs_adversary.a"
)
