file(REMOVE_RECURSE
  "libfjs_core.a"
)
