# Empty dependencies file for fjs_core.
# This may be replaced when dependencies are built.
