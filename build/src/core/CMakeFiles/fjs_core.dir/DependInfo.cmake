
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/instance.cpp" "src/core/CMakeFiles/fjs_core.dir/instance.cpp.o" "gcc" "src/core/CMakeFiles/fjs_core.dir/instance.cpp.o.d"
  "/root/repo/src/core/interval.cpp" "src/core/CMakeFiles/fjs_core.dir/interval.cpp.o" "gcc" "src/core/CMakeFiles/fjs_core.dir/interval.cpp.o.d"
  "/root/repo/src/core/interval_set.cpp" "src/core/CMakeFiles/fjs_core.dir/interval_set.cpp.o" "gcc" "src/core/CMakeFiles/fjs_core.dir/interval_set.cpp.o.d"
  "/root/repo/src/core/job.cpp" "src/core/CMakeFiles/fjs_core.dir/job.cpp.o" "gcc" "src/core/CMakeFiles/fjs_core.dir/job.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/fjs_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/fjs_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/time.cpp" "src/core/CMakeFiles/fjs_core.dir/time.cpp.o" "gcc" "src/core/CMakeFiles/fjs_core.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/fjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
