file(REMOVE_RECURSE
  "CMakeFiles/fjs_core.dir/instance.cpp.o"
  "CMakeFiles/fjs_core.dir/instance.cpp.o.d"
  "CMakeFiles/fjs_core.dir/interval.cpp.o"
  "CMakeFiles/fjs_core.dir/interval.cpp.o.d"
  "CMakeFiles/fjs_core.dir/interval_set.cpp.o"
  "CMakeFiles/fjs_core.dir/interval_set.cpp.o.d"
  "CMakeFiles/fjs_core.dir/job.cpp.o"
  "CMakeFiles/fjs_core.dir/job.cpp.o.d"
  "CMakeFiles/fjs_core.dir/schedule.cpp.o"
  "CMakeFiles/fjs_core.dir/schedule.cpp.o.d"
  "CMakeFiles/fjs_core.dir/time.cpp.o"
  "CMakeFiles/fjs_core.dir/time.cpp.o.d"
  "libfjs_core.a"
  "libfjs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
