# Empty compiler generated dependencies file for fjs_support.
# This may be replaced when dependencies are built.
