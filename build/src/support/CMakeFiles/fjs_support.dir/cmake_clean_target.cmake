file(REMOVE_RECURSE
  "libfjs_support.a"
)
