file(REMOVE_RECURSE
  "CMakeFiles/fjs_support.dir/asciiplot.cpp.o"
  "CMakeFiles/fjs_support.dir/asciiplot.cpp.o.d"
  "CMakeFiles/fjs_support.dir/csv.cpp.o"
  "CMakeFiles/fjs_support.dir/csv.cpp.o.d"
  "CMakeFiles/fjs_support.dir/rng.cpp.o"
  "CMakeFiles/fjs_support.dir/rng.cpp.o.d"
  "CMakeFiles/fjs_support.dir/stats.cpp.o"
  "CMakeFiles/fjs_support.dir/stats.cpp.o.d"
  "CMakeFiles/fjs_support.dir/string_util.cpp.o"
  "CMakeFiles/fjs_support.dir/string_util.cpp.o.d"
  "CMakeFiles/fjs_support.dir/table.cpp.o"
  "CMakeFiles/fjs_support.dir/table.cpp.o.d"
  "CMakeFiles/fjs_support.dir/thread_pool.cpp.o"
  "CMakeFiles/fjs_support.dir/thread_pool.cpp.o.d"
  "libfjs_support.a"
  "libfjs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
