# Empty dependencies file for fjs_sim.
# This may be replaced when dependencies are built.
