
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/conformance.cpp" "src/sim/CMakeFiles/fjs_sim.dir/conformance.cpp.o" "gcc" "src/sim/CMakeFiles/fjs_sim.dir/conformance.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/fjs_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/fjs_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/events.cpp" "src/sim/CMakeFiles/fjs_sim.dir/events.cpp.o" "gcc" "src/sim/CMakeFiles/fjs_sim.dir/events.cpp.o.d"
  "/root/repo/src/sim/length_oracle.cpp" "src/sim/CMakeFiles/fjs_sim.dir/length_oracle.cpp.o" "gcc" "src/sim/CMakeFiles/fjs_sim.dir/length_oracle.cpp.o.d"
  "/root/repo/src/sim/source.cpp" "src/sim/CMakeFiles/fjs_sim.dir/source.cpp.o" "gcc" "src/sim/CMakeFiles/fjs_sim.dir/source.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/fjs_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/fjs_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/trace_check.cpp" "src/sim/CMakeFiles/fjs_sim.dir/trace_check.cpp.o" "gcc" "src/sim/CMakeFiles/fjs_sim.dir/trace_check.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
