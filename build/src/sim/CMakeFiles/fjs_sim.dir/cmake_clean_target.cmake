file(REMOVE_RECURSE
  "libfjs_sim.a"
)
