file(REMOVE_RECURSE
  "CMakeFiles/fjs_sim.dir/conformance.cpp.o"
  "CMakeFiles/fjs_sim.dir/conformance.cpp.o.d"
  "CMakeFiles/fjs_sim.dir/engine.cpp.o"
  "CMakeFiles/fjs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/fjs_sim.dir/events.cpp.o"
  "CMakeFiles/fjs_sim.dir/events.cpp.o.d"
  "CMakeFiles/fjs_sim.dir/length_oracle.cpp.o"
  "CMakeFiles/fjs_sim.dir/length_oracle.cpp.o.d"
  "CMakeFiles/fjs_sim.dir/source.cpp.o"
  "CMakeFiles/fjs_sim.dir/source.cpp.o.d"
  "CMakeFiles/fjs_sim.dir/trace.cpp.o"
  "CMakeFiles/fjs_sim.dir/trace.cpp.o.d"
  "CMakeFiles/fjs_sim.dir/trace_check.cpp.o"
  "CMakeFiles/fjs_sim.dir/trace_check.cpp.o.d"
  "libfjs_sim.a"
  "libfjs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
