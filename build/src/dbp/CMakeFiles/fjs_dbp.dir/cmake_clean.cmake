file(REMOVE_RECURSE
  "CMakeFiles/fjs_dbp.dir/packing.cpp.o"
  "CMakeFiles/fjs_dbp.dir/packing.cpp.o.d"
  "CMakeFiles/fjs_dbp.dir/pipeline.cpp.o"
  "CMakeFiles/fjs_dbp.dir/pipeline.cpp.o.d"
  "CMakeFiles/fjs_dbp.dir/simulator.cpp.o"
  "CMakeFiles/fjs_dbp.dir/simulator.cpp.o.d"
  "libfjs_dbp.a"
  "libfjs_dbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_dbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
