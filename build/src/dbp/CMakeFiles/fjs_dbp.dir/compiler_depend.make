# Empty compiler generated dependencies file for fjs_dbp.
# This may be replaced when dependencies are built.
