file(REMOVE_RECURSE
  "libfjs_dbp.a"
)
