# CMake generated Testfile for 
# Source directory: /root/repo/src/dbp
# Build directory: /root/repo/build/src/dbp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
