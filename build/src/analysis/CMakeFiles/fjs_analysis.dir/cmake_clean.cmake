file(REMOVE_RECURSE
  "CMakeFiles/fjs_analysis.dir/convergence.cpp.o"
  "CMakeFiles/fjs_analysis.dir/convergence.cpp.o.d"
  "CMakeFiles/fjs_analysis.dir/flag_forest.cpp.o"
  "CMakeFiles/fjs_analysis.dir/flag_forest.cpp.o.d"
  "CMakeFiles/fjs_analysis.dir/gantt.cpp.o"
  "CMakeFiles/fjs_analysis.dir/gantt.cpp.o.d"
  "CMakeFiles/fjs_analysis.dir/instance_stats.cpp.o"
  "CMakeFiles/fjs_analysis.dir/instance_stats.cpp.o.d"
  "CMakeFiles/fjs_analysis.dir/ratio.cpp.o"
  "CMakeFiles/fjs_analysis.dir/ratio.cpp.o.d"
  "CMakeFiles/fjs_analysis.dir/report.cpp.o"
  "CMakeFiles/fjs_analysis.dir/report.cpp.o.d"
  "CMakeFiles/fjs_analysis.dir/svg.cpp.o"
  "CMakeFiles/fjs_analysis.dir/svg.cpp.o.d"
  "CMakeFiles/fjs_analysis.dir/sweep.cpp.o"
  "CMakeFiles/fjs_analysis.dir/sweep.cpp.o.d"
  "libfjs_analysis.a"
  "libfjs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
