
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/convergence.cpp" "src/analysis/CMakeFiles/fjs_analysis.dir/convergence.cpp.o" "gcc" "src/analysis/CMakeFiles/fjs_analysis.dir/convergence.cpp.o.d"
  "/root/repo/src/analysis/flag_forest.cpp" "src/analysis/CMakeFiles/fjs_analysis.dir/flag_forest.cpp.o" "gcc" "src/analysis/CMakeFiles/fjs_analysis.dir/flag_forest.cpp.o.d"
  "/root/repo/src/analysis/gantt.cpp" "src/analysis/CMakeFiles/fjs_analysis.dir/gantt.cpp.o" "gcc" "src/analysis/CMakeFiles/fjs_analysis.dir/gantt.cpp.o.d"
  "/root/repo/src/analysis/instance_stats.cpp" "src/analysis/CMakeFiles/fjs_analysis.dir/instance_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/fjs_analysis.dir/instance_stats.cpp.o.d"
  "/root/repo/src/analysis/ratio.cpp" "src/analysis/CMakeFiles/fjs_analysis.dir/ratio.cpp.o" "gcc" "src/analysis/CMakeFiles/fjs_analysis.dir/ratio.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/fjs_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/fjs_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/svg.cpp" "src/analysis/CMakeFiles/fjs_analysis.dir/svg.cpp.o" "gcc" "src/analysis/CMakeFiles/fjs_analysis.dir/svg.cpp.o.d"
  "/root/repo/src/analysis/sweep.cpp" "src/analysis/CMakeFiles/fjs_analysis.dir/sweep.cpp.o" "gcc" "src/analysis/CMakeFiles/fjs_analysis.dir/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fjs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/schedulers/CMakeFiles/fjs_schedulers.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/fjs_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fjs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
