# Empty dependencies file for fjs_analysis.
# This may be replaced when dependencies are built.
