file(REMOVE_RECURSE
  "libfjs_analysis.a"
)
