file(REMOVE_RECURSE
  "libfjs_workload.a"
)
