# Empty compiler generated dependencies file for fjs_workload.
# This may be replaced when dependencies are built.
