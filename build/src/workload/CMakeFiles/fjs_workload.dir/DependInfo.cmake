
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cloud_trace.cpp" "src/workload/CMakeFiles/fjs_workload.dir/cloud_trace.cpp.o" "gcc" "src/workload/CMakeFiles/fjs_workload.dir/cloud_trace.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/fjs_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/fjs_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/suite.cpp" "src/workload/CMakeFiles/fjs_workload.dir/suite.cpp.o" "gcc" "src/workload/CMakeFiles/fjs_workload.dir/suite.cpp.o.d"
  "/root/repo/src/workload/transforms.cpp" "src/workload/CMakeFiles/fjs_workload.dir/transforms.cpp.o" "gcc" "src/workload/CMakeFiles/fjs_workload.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fjs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fjs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
