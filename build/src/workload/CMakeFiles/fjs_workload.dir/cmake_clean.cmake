file(REMOVE_RECURSE
  "CMakeFiles/fjs_workload.dir/cloud_trace.cpp.o"
  "CMakeFiles/fjs_workload.dir/cloud_trace.cpp.o.d"
  "CMakeFiles/fjs_workload.dir/generator.cpp.o"
  "CMakeFiles/fjs_workload.dir/generator.cpp.o.d"
  "CMakeFiles/fjs_workload.dir/suite.cpp.o"
  "CMakeFiles/fjs_workload.dir/suite.cpp.o.d"
  "CMakeFiles/fjs_workload.dir/transforms.cpp.o"
  "CMakeFiles/fjs_workload.dir/transforms.cpp.o.d"
  "libfjs_workload.a"
  "libfjs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
