# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cloud_cost "/root/repo/build/examples/cloud_cost" "120" "3")
set_tests_properties(example_cloud_cost PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_energy_efficiency "/root/repo/build/examples/energy_efficiency" "100" "3")
set_tests_properties(example_energy_efficiency PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary_explorer "/root/repo/build/examples/adversary_explorer" "batch+")
set_tests_properties(example_adversary_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_walkthrough "/root/repo/build/examples/paper_walkthrough")
set_tests_properties(example_paper_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_list "/root/repo/build/examples/fjs_cli" "--list")
set_tests_properties(example_cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_run "/root/repo/build/examples/fjs_cli" "--scheduler" "profit:k=2" "--workload" "bimodal" "--jobs" "20" "--seed" "3" "--stats" "--timeline" "--gantt")
set_tests_properties(example_cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
