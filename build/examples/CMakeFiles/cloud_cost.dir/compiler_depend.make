# Empty compiler generated dependencies file for cloud_cost.
# This may be replaced when dependencies are built.
