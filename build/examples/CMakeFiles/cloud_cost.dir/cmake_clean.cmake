file(REMOVE_RECURSE
  "CMakeFiles/cloud_cost.dir/cloud_cost.cpp.o"
  "CMakeFiles/cloud_cost.dir/cloud_cost.cpp.o.d"
  "cloud_cost"
  "cloud_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
