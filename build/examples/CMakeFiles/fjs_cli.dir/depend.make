# Empty dependencies file for fjs_cli.
# This may be replaced when dependencies are built.
