file(REMOVE_RECURSE
  "CMakeFiles/fjs_cli.dir/fjs_cli.cpp.o"
  "CMakeFiles/fjs_cli.dir/fjs_cli.cpp.o.d"
  "fjs_cli"
  "fjs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fjs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
