#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]

For every benchmark present in both files the script compares
items_per_second when available (higher is better) and falls back to
real_time (lower is better) otherwise. A benchmark regressing by more
than the threshold (default 15%) is reported and the script exits
non-zero, so the committed BENCH_e9.json baseline acts as a gate:

    ./build/src/experiments/fjs_experiments --only e9 --smoke \
        --out results --run-id e9-smoke --quiet
    scripts/bench_compare.py BENCH_e9.json results/e9-smoke/e9/benchmarks.json

With --manifests OLD NEW it additionally prints per-experiment wall-time
trends between two fjs_experiments manifest.json files (warnings only).

With --allocs the script additionally compares the `allocs_per_sim`
counter (emitted by benchmarks built with -DFJS_COUNT_ALLOCS=ON, e.g.
BM_PortfolioSpan) between the two files. Any growth is reported as a
warning but is never fatal: allocation counts are deterministic, so the
column catches a regression re-introducing per-simulation allocations
without turning baseline refreshes into a chore.

Benchmarks present in only one file are reported as added/removed with a
warning but are never fatal, so the gate does not block adding or
retiring benchmarks. Degenerate measurements (zero, negative, NaN or
infinite on either side) print an 'n/a' change plus a non-fatal warning
instead of dividing by zero or reporting an infinite percentage. Pass --json PATH (or --json -) to also emit a
machine-readable summary of the comparison. Single-machine noise easily
reaches a few percent; compare runs taken back-to-back on an otherwise
idle machine before trusting a failure.
"""

import argparse
import json
import math
import re
import sys

# Per-benchmark runtime options google-benchmark appends to the name
# (e.g. "BM_Foo/min_time:0.050"). Stripped before comparing so a smoke
# run with a short MinTime still gates against the full-profile baseline.
_NAME_NOISE = re.compile(r"/(?:min_time|min_warmup_time|repeats|iterations):[^/]+")


def _iter_rows(path):
    """Yields (clean name, bench dict, is_median_aggregate) per JSON row.

    Repetition batteries (->Repetitions(n), often with
    ReportAggregatesOnly) emit aggregate rows named "BM_Foo_median" etc.
    with the plain benchmark name in run_name. The median is the robust
    per-benchmark measurement, so it is surfaced under the plain name and
    preferred over any per-repetition iteration rows also present; the
    mean/stddev/cv aggregates are skipped.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as err:
        sys.exit(f"error: cannot read {path}: {err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: {path} is not valid benchmark JSON ({err})")
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
            name = bench.get("run_name", bench["name"])
            yield _NAME_NOISE.sub("", name), bench, True
        else:
            yield _NAME_NOISE.sub("", bench["name"]), bench, False


def load_benchmarks(path):
    """Returns {name: (metric_name, value, higher_is_better)}.

    When a benchmark carries both iteration rows and a median aggregate
    (repetitions without ReportAggregatesOnly) the median wins.
    """
    out = {}
    medians = set()
    for name, bench, is_median in _iter_rows(path):
        if not is_median and name in medians:
            continue
        if is_median:
            medians.add(name)
        if "items_per_second" in bench:
            out[name] = ("items_per_second", float(bench["items_per_second"]), True)
        elif "real_time" in bench:
            out[name] = ("real_time", float(bench["real_time"]), False)
    return out


def load_counters(path, counter):
    """Returns {benchmark name: counter value} for benchmarks exposing it."""
    out = {}
    medians = set()
    for name, bench, is_median in _iter_rows(path):
        if not is_median and name in medians:
            continue
        if counter in bench:
            if is_median:
                medians.add(name)
            out[name] = float(bench[counter])
    return out


def compare_allocs(baseline_path, current_path, counter="allocs_per_sim"):
    """Warns when a benchmark's per-simulation allocation count grew.

    Counter values come from FJS_COUNT_ALLOCS builds and are exact (the
    hook counts operator new calls), so any growth is a real change — but
    the gate stays non-fatal: the baseline may predate the counter, and a
    deliberate feature is allowed to cost an allocation once it is
    acknowledged by refreshing the baseline.

    Returns the list of benchmark names whose count grew.
    """
    base = load_counters(baseline_path, counter)
    curr = load_counters(current_path, counter)
    shared = sorted(set(base) & set(curr))
    if not base and not curr:
        print(f"note: neither file carries a '{counter}' counter "
              "(build with -DFJS_COUNT_ALLOCS=ON to emit it)")
        return []
    if not shared:
        print(f"note: no benchmark exposes '{counter}' in both files; "
              "allocation gate skipped")
        return []
    width = max(len(name) for name in shared)
    print(f"\nallocation counts ({counter}):")
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}")
    grew = []
    for name in shared:
        flag = ""
        if curr[name] > base[name]:
            flag = "  GREW"
            grew.append(name)
        print(f"{name:<{width}}  {base[name]:>10.3g}  {curr[name]:>10.3g}"
              f"{flag}")
    if grew:
        print(f"warning: {len(grew)} benchmark(s) allocate more per "
              f"simulation than the baseline: {', '.join(grew)} "
              "(non-fatal; refresh the baseline only if the growth is "
              "intentional)")
    return grew


def comparable(value):
    """True when a measurement can serve as a ratio numerator/denominator.

    Zero, negative, NaN and infinite values all produce nonsense (or a
    ZeroDivisionError / an inf% change) when fed into value/other - 1.0,
    so degenerate rows are reported as warnings instead of compared.
    """
    return isinstance(value, (int, float)) and math.isfinite(value) \
        and value > 0


def fractional_change(base_value, curr_value, higher_is_better):
    """Signed fractional change where negative always means 'regressed'.

    Returns None when either side is degenerate (see `comparable`) —
    callers print such rows as 'n/a' warnings rather than dividing by
    zero or reporting an infinite percentage.
    """
    if not comparable(base_value) or not comparable(curr_value):
        return None
    if higher_is_better:
        # Fractional change in throughput; negative = regression.
        return curr_value / base_value - 1.0
    # Lower time is better; negative change = regression.
    return base_value / curr_value - 1.0


def compare_rows(base, curr, threshold):
    """Pure comparison of two load_benchmarks() maps.

    Returns (rows, warnings): rows is a list of dicts with name/metric/
    baseline/current/change/regressed where change is None for degenerate
    measurements (never counted as a regression), and warnings is a list
    of human-readable strings for rows that could not be compared.
    """
    rows = []
    warnings = []
    for name in sorted(set(base) & set(curr)):
        base_metric, base_value, higher_is_better = base[name]
        curr_metric, curr_value, _ = curr[name]
        if base_metric != curr_metric:
            warnings.append(
                f"{name}: metric changed ({base_metric} -> {curr_metric}); "
                "not compared")
            continue
        change = fractional_change(base_value, curr_value, higher_is_better)
        if change is None:
            warnings.append(
                f"{name}: degenerate {base_metric} (baseline {base_value!r},"
                f" current {curr_value!r}); not compared")
        regressed = change is not None and change < -threshold
        rows.append({
            "name": name,
            "metric": base_metric,
            "baseline": base_value,
            "current": curr_value,
            "change": change,
            "regressed": regressed,
        })
    return rows, warnings


def geomean_speedup(rows):
    """Geometric-mean speedup factor over the comparable rows.

    Each row contributes 1 + change (its speedup factor: >1 means the
    current run is better on that row's metric, regardless of whether the
    metric is throughput or time). Returns None when no row is
    comparable; degenerate rows are excluded rather than poisoning the
    mean.
    """
    factors = [1.0 + r["change"] for r in rows if r["change"] is not None]
    if not factors:
        return None
    return math.exp(sum(math.log(f) for f in factors) / len(factors))


def manifest_trend_rows(old, new, slowdown):
    """Pure wall-time trend over two {name: record} manifest maps.

    Returns (rows, warnings); a row's change is None (with a warning)
    when either wall time is missing or degenerate.
    """
    rows = []
    warnings = []
    for name in sorted(set(old) & set(new)):
        old_ms, new_ms = old[name].get("wall_ms"), new[name].get("wall_ms")
        change = fractional_change(old_ms, new_ms,
                                   higher_is_better=False)
        if change is None:
            warnings.append(
                f"{name}: wall time unavailable or degenerate "
                f"(old {old_ms!r}, new {new_ms!r}); not compared")
            rows.append((name, old_ms, new_ms, None, False))
            continue
        # For display keep the raw time ratio (positive = slower).
        ratio_change = new_ms / old_ms - 1.0
        rows.append((name, old_ms, new_ms, ratio_change,
                     new_ms > old_ms * slowdown))
    return rows, warnings


def compare_manifests(old_path, new_path, slowdown=1.5):
    """Prints wall-time trends between two runner manifests.

    Wall times on a shared machine are noisy, so this never fails the
    gate; it exists to surface gross slowdowns (default: >1.5x) between
    smoke runs early, next to the E9 throughput gate.
    """
    def load(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: cannot read manifest {path}: {err}")
            return None
        return {e["name"]: e for e in doc.get("experiments", [])}

    old, new = load(old_path), load(new_path)
    if old is None or new is None:
        return
    if not set(old) & set(new):
        print("warning: manifests share no experiments; nothing to compare")
        return
    print(f"experiment wall times ({old_path} -> {new_path}):")
    rows, warnings = manifest_trend_rows(old, new, slowdown)
    slow = []
    for name, old_ms, new_ms, change, slower in rows:
        if change is None:
            print(f"  {name:<6} {'n/a':>10} -> {'n/a':>10} (not compared)")
            continue
        flag = ""
        if slower:
            flag = "  SLOWER"
            slow.append(name)
        print(f"  {name:<6} {old_ms:>10.1f} ms -> {new_ms:>10.1f} ms "
              f"({change:+.1%}){flag}")
    for message in warnings:
        print(f"warning: {message}")
    if slow:
        print(f"warning: {len(slow)} experiment(s) ran >{slowdown:.1f}x "
              f"slower than the previous manifest: {', '.join(slow)} "
              "(informational; rerun on an idle machine before acting)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", help="baseline benchmark JSON")
    parser.add_argument("current", nargs="?", help="current benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="fractional regression that fails the gate (default 0.15)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write a machine-readable comparison summary to PATH "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--allocs",
        action="store_true",
        help="also compare the allocs_per_sim counter between the two "
        "files (non-fatal warning on growth; requires FJS_COUNT_ALLOCS "
        "builds to emit the counter)",
    )
    parser.add_argument(
        "--manifests",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="also compare per-experiment wall times from two "
        "fjs_experiments manifest.json files (warnings only, never fatal)",
    )
    args = parser.parse_args()

    if args.manifests:
        compare_manifests(*args.manifests)
    if args.baseline is None or args.current is None:
        if args.manifests:
            return 0
        parser.error("BASELINE and CURRENT benchmark JSON files are "
                     "required unless --manifests is given")

    base = load_benchmarks(args.baseline)
    curr = load_benchmarks(args.current)

    rows, warnings = compare_rows(base, curr, args.threshold)
    regressions = [r["name"] for r in rows if r["regressed"]]

    width = max((len(r["name"]) for r in rows), default=4)
    print(f"{'benchmark':<{width}}  {'metric':<16}  {'baseline':>12}  "
          f"{'current':>12}  {'change':>8}")
    for row in rows:
        flag = "  REGRESSION" if row["regressed"] else ""
        change = ("     n/a" if row["change"] is None
                  else f"{row['change']:>+7.1%}")
        print(f"{row['name']:<{width}}  {row['metric']:<16}  "
              f"{row['baseline']:>12.4g}  {row['current']:>12.4g}  "
              f"{change}{flag}")
    geomean = geomean_speedup(rows)
    if geomean is not None:
        print(f"{'geomean speedup':<{width}}  {'':<16}  {'':>12}  "
              f"{geomean:>11.3f}x  {geomean - 1.0:>+7.1%}")
    for message in warnings:
        print(f"warning: {message}")

    # One-sided benchmarks: the set changed (benchmark added or retired).
    # Worth a warning — a rename silently drops a gate — but never fatal.
    removed = sorted(set(base) - set(curr))
    added = sorted(set(curr) - set(base))
    if removed:
        print(f"warning: {len(removed)} benchmark(s) removed since the "
              f"baseline (not compared): {', '.join(removed)}")
    if added:
        print(f"warning: {len(added)} benchmark(s) added since the "
              f"baseline (not compared): {', '.join(added)}")

    allocs_grew = []
    if args.allocs:
        allocs_grew = compare_allocs(args.baseline, args.current)

    if args.json:
        summary = {
            "baseline": args.baseline,
            "current": args.current,
            "threshold": args.threshold,
            "compared": len(rows),
            "regressions": regressions,
            "geomean_speedup": geomean,
            "added": added,
            "removed": removed,
            "allocs_grew": allocs_grew,
            "benchmarks": rows,
        }
        if args.json == "-":
            json.dump(summary, sys.stdout, indent=2)
            print()
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(summary, fh, indent=2)
                fh.write("\n")

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%} "
          f"({len(rows)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
