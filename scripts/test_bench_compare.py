#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py (run via ctest or directly).

Focus: the degenerate-measurement handling — zero/NaN/inf values must
produce non-fatal warnings and 'n/a' rows, never a ZeroDivisionError or
an infinite percentage — plus the core regression/trend classification.
"""

import importlib.util
import json
import math
import os
import subprocess
import sys
import tempfile
import unittest

_SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "bench_compare.py")
_SPEC = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def row(rows, name):
    return next(r for r in rows if r["name"] == name)


class FractionalChangeTest(unittest.TestCase):
    def test_throughput_direction(self):
        self.assertAlmostEqual(
            bench_compare.fractional_change(100.0, 80.0, True), -0.2)
        self.assertAlmostEqual(
            bench_compare.fractional_change(100.0, 120.0, True), 0.2)

    def test_time_direction(self):
        # Slower (larger time) must come out negative = regression.
        self.assertAlmostEqual(
            bench_compare.fractional_change(100.0, 200.0, False), -0.5)
        self.assertAlmostEqual(
            bench_compare.fractional_change(200.0, 100.0, False), 1.0)

    def test_degenerate_values_return_none(self):
        for bad in (0, 0.0, -1.0, math.nan, math.inf, None, "fast"):
            self.assertIsNone(
                bench_compare.fractional_change(bad, 100.0, True), bad)
            self.assertIsNone(
                bench_compare.fractional_change(100.0, bad, False), bad)


class CompareRowsTest(unittest.TestCase):
    def test_classifies_regressions(self):
        base = {"BM_A": ("items_per_second", 100.0, True),
                "BM_B": ("real_time", 10.0, False)}
        curr = {"BM_A": ("items_per_second", 50.0, True),
                "BM_B": ("real_time", 10.5, False)}
        rows, warnings = bench_compare.compare_rows(base, curr, 0.15)
        self.assertEqual(warnings, [])
        self.assertTrue(row(rows, "BM_A")["regressed"])
        self.assertFalse(row(rows, "BM_B")["regressed"])

    def test_zero_current_time_does_not_divide_by_zero(self):
        base = {"BM_T": ("real_time", 10.0, False)}
        curr = {"BM_T": ("real_time", 0.0, False)}
        rows, warnings = bench_compare.compare_rows(base, curr, 0.15)
        self.assertIsNone(row(rows, "BM_T")["change"])
        self.assertFalse(row(rows, "BM_T")["regressed"])
        self.assertEqual(len(warnings), 1)
        self.assertIn("degenerate", warnings[0])

    def test_zero_baseline_throughput_is_not_infinite(self):
        base = {"BM_Z": ("items_per_second", 0.0, True)}
        curr = {"BM_Z": ("items_per_second", 1000.0, True)}
        rows, warnings = bench_compare.compare_rows(base, curr, 0.15)
        self.assertIsNone(row(rows, "BM_Z")["change"])
        self.assertEqual(len(warnings), 1)

    def test_nan_and_inf_are_flagged_not_compared(self):
        base = {"BM_N": ("real_time", math.nan, False),
                "BM_I": ("real_time", 5.0, False)}
        curr = {"BM_N": ("real_time", 5.0, False),
                "BM_I": ("real_time", math.inf, False)}
        rows, warnings = bench_compare.compare_rows(base, curr, 0.15)
        self.assertIsNone(row(rows, "BM_N")["change"])
        self.assertIsNone(row(rows, "BM_I")["change"])
        self.assertEqual(len(warnings), 2)

    def test_metric_mismatch_warns_and_skips(self):
        base = {"BM_M": ("items_per_second", 10.0, True)}
        curr = {"BM_M": ("real_time", 10.0, False)}
        rows, warnings = bench_compare.compare_rows(base, curr, 0.15)
        self.assertEqual(rows, [])
        self.assertEqual(len(warnings), 1)
        self.assertIn("metric changed", warnings[0])


class LoadBenchmarksTest(unittest.TestCase):
    def _load(self, benchmarks):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "bench.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump({"benchmarks": benchmarks}, fh)
            return bench_compare.load_benchmarks(path)

    def test_median_aggregate_preferred_over_iterations(self):
        # Repetitions without ReportAggregatesOnly: per-repetition rows
        # plus mean/median/stddev aggregates. The median must win under
        # the plain name; mean/stddev must not leak in.
        loaded = self._load([
            {"name": "BM_R", "run_type": "iteration", "real_time": 30.0},
            {"name": "BM_R", "run_type": "iteration", "real_time": 10.0},
            {"name": "BM_R_mean", "run_name": "BM_R",
             "run_type": "aggregate", "aggregate_name": "mean",
             "real_time": 20.0},
            {"name": "BM_R_median", "run_name": "BM_R",
             "run_type": "aggregate", "aggregate_name": "median",
             "real_time": 15.0},
            {"name": "BM_R_stddev", "run_name": "BM_R",
             "run_type": "aggregate", "aggregate_name": "stddev",
             "real_time": 9.0},
        ])
        self.assertEqual(loaded, {"BM_R": ("real_time", 15.0, False)})

    def test_aggregates_only_battery_loads_median(self):
        # ReportAggregatesOnly(true): no iteration rows at all.
        loaded = self._load([
            {"name": "BM_M_median", "run_name": "BM_M/repeats:3",
             "run_type": "aggregate", "aggregate_name": "median",
             "items_per_second": 42.0},
            {"name": "BM_M_cv", "run_name": "BM_M/repeats:3",
             "run_type": "aggregate", "aggregate_name": "cv",
             "items_per_second": 0.01},
        ])
        self.assertEqual(loaded, {"BM_M": ("items_per_second", 42.0, True)})


class GeomeanTest(unittest.TestCase):
    def test_geomean_over_comparable_rows(self):
        rows = [{"change": 1.0}, {"change": -0.5}, {"change": None}]
        # Factors 2.0 and 0.5: geomean exactly 1.0; None excluded.
        self.assertAlmostEqual(bench_compare.geomean_speedup(rows), 1.0)

    def test_geomean_none_when_nothing_comparable(self):
        self.assertIsNone(bench_compare.geomean_speedup([]))
        self.assertIsNone(bench_compare.geomean_speedup([{"change": None}]))


class ManifestTrendTest(unittest.TestCase):
    def test_missing_or_zero_wall_times_warn_instead_of_crashing(self):
        old = {"e1": {"wall_ms": 0.0}, "e2": {}, "e3": {"wall_ms": 10.0}}
        new = {"e1": {"wall_ms": 5.0}, "e2": {"wall_ms": 5.0},
               "e3": {"wall_ms": 40.0}}
        rows, warnings = bench_compare.manifest_trend_rows(old, new, 1.5)
        by_name = {r[0]: r for r in rows}
        self.assertIsNone(by_name["e1"][3])  # zero baseline: not compared
        self.assertIsNone(by_name["e2"][3])  # missing baseline
        self.assertAlmostEqual(by_name["e3"][3], 3.0)  # 10 -> 40 ms
        self.assertTrue(by_name["e3"][4])  # flagged slower
        self.assertEqual(len(warnings), 2)


class CliSmokeTest(unittest.TestCase):
    """End-to-end: degenerate rows must not crash the CLI or fail the gate."""

    @staticmethod
    def _write(directory, filename, names_to_values):
        doc = {"benchmarks": [
            {"name": name, "real_time": value, "time_unit": "ns"}
            for name, value in names_to_values.items()]}
        path = os.path.join(directory, filename)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return path

    def test_zero_time_row_warns_but_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = self._write(tmp, "base.json",
                                   {"BM_Ok": 10.0, "BM_Zero": 10.0})
            current = self._write(tmp, "curr.json",
                                  {"BM_Ok": 10.5, "BM_Zero": 0.0})
            proc = subprocess.run(
                [sys.executable, _SCRIPT, baseline, current],
                capture_output=True, text=True, check=False)
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
            self.assertIn("warning:", proc.stdout)
            self.assertIn("n/a", proc.stdout)

    def test_real_regression_still_fails(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = self._write(tmp, "base.json", {"BM_Ok": 10.0})
            current = self._write(tmp, "curr.json", {"BM_Ok": 20.0})
            proc = subprocess.run(
                [sys.executable, _SCRIPT, baseline, current],
                capture_output=True, text=True, check=False)
            self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
            self.assertIn("REGRESSION", proc.stdout)


if __name__ == "__main__":
    unittest.main()
