#!/usr/bin/env bash
# Reproduce everything: build, run the full test suite, run every
# experiment's smoke profile through fjs_experiments (E1-E16 tables,
# verdicts + E9 microbenchmarks), and leave the transcripts in
# test_output.txt / bench_output.txt at the repo root. Full-profile
# reproduction: `build/src/experiments/fjs_experiments` (no --smoke).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Differential fuzzing smoke: a fixed seed window through every oracle
# (schedulers + trace validator + span recomputation + offline sandwich).
# Deterministic; failures are shrunk and land in fuzz_repros/.
mkdir -p fuzz_repros
build/src/fuzz/fjs_fuzz --smoke --repro-dir fuzz_repros 2>&1 | tee -a test_output.txt

# Static-analysis gate: clang-tidy over src/ against the checked-in
# suppression baseline (.clang-tidy + scripts/clang_tidy_baseline.txt).
# Skips with a warning where clang-tidy is not installed.
scripts/run_clang_tidy.sh 2>&1 | tee -a test_output.txt

# Sanitizer smoke: the offline certification stack (exact solver, bounds,
# miner, differential pins) plus the fuzz harness under ASan+UBSan. Fast
# mode — only the tests whose memory behavior recent PRs changed, not the
# full suite.
cmake --preset asan-ubsan
cmake --build build-asan --target \
  test_offline_exact test_offline_bounds test_adversary_miner \
  test_differential test_support_simd fjs_fuzz
ctest --test-dir build-asan --output-on-failure \
  -R 'test_offline_exact|test_offline_bounds|test_adversary_miner|test_differential|test_support_simd' \
  2>&1 | tee -a test_output.txt
# The same fuzz smoke under the sanitizers (undefined behavior in an
# oracle or scheduler fails the run even when spans agree).
build-asan/src/fuzz/fjs_fuzz --smoke 2>&1 | tee -a test_output.txt
# Experiment smoke under the sanitizers too: every scheduler, adversary
# and solver gets exercised end-to-end with ASan+UBSan watching. E9 is
# skipped — timing microbenchmarks are meaningless under sanitizers.
cmake --build build-asan --target fjs_experiments
rm -rf results/asan-smoke
build-asan/src/experiments/fjs_experiments --smoke --skip e9 \
  --out results --run-id asan-smoke --quiet 2>&1 | tee -a test_output.txt

# ThreadSanitizer smoke: the work-stealing pool, the portfolio
# determinism tests and the experiment pipeline under TSan. This is the
# gate for the lock-free deque — a race in steal/pop ordering or the
# injection queue shows up here, not in the (deterministic) unit tests.
# E9 is skipped for the same reason as under ASan: timing is meaningless.
cmake --preset tsan
cmake --build build-tsan --target \
  test_support_parallel test_sim_portfolio fjs_experiments
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  ctest --test-dir build-tsan --output-on-failure \
  -R 'test_support_parallel|test_sim_portfolio' 2>&1 | tee -a test_output.txt
rm -rf results/tsan-smoke
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  build-tsan/src/experiments/fjs_experiments --smoke --skip e9 \
  --out results --run-id tsan-smoke --quiet 2>&1 | tee -a test_output.txt
# The checkpoint-replay differential (the ckpt:* oracles in the standard
# battery) under TSan as well: resume_static moves arena-backed engine
# state through the shared workspace pool, so an ordering bug there shows
# up here rather than in the deterministic unit tests. (The plain and
# ASan+UBSan fuzz smokes above already run the same battery.)
cmake --build build-tsan --target fjs_fuzz
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  build-tsan/src/fuzz/fjs_fuzz --smoke 2>&1 | tee -a test_output.txt

# Allocation gate: a -DFJS_COUNT_ALLOCS=ON build counts every operator
# new. The portfolio tests assert the span-only kernel reaches a
# zero-allocation steady state, and the E9 smoke re-emits the
# allocs_per_sim counter so bench_compare's --allocs column warns
# (non-fatally) if a change re-introduces per-simulation allocations.
cmake -B build-allocs -G Ninja -DFJS_COUNT_ALLOCS=ON > /dev/null
cmake --build build-allocs --target test_sim_portfolio fjs_experiments
ctest --test-dir build-allocs --output-on-failure -R 'test_sim_portfolio' \
  2>&1 | tee -a test_output.txt
build-allocs/src/experiments/fjs_experiments --only e9 --smoke \
  --out results --run-id e9-allocs --force --quiet
scripts/bench_compare.py BENCH_allocs.json \
  results/e9-allocs/e9/benchmarks.json --allocs \
  || echo "WARNING: allocs-build bench smoke regressed vs BENCH_allocs.json (noisy single run)"

# SIMD scalar gate, three parts (docs/PERF.md, "SIMD kernels"):
#  1. A -DFJS_SIMD=OFF build (scalar dispatch; the vector kernels stay
#     compiled and tier-addressable) must pass the FULL test suite —
#     including the tier-differential tests and the simd-vs-scalar fuzz
#     oracle, so a vector/scalar divergence fails in either build.
#  2. Its E9 smoke is diffed against the committed scalar baseline
#     BENCH_e9_scalar.json — the honest end-to-end scalar measurement
#     (the in-binary /scalar benchmark curves share a TU with the vector
#     kernels and get partially auto-vectorized).
#  3. The default build rerun with FJS_FORCE_SCALAR=1 must produce
#     byte-identical experiment verdicts: dispatch tier can influence
#     performance only, never a result.
cmake -B build-nosimd -G Ninja -DFJS_SIMD=OFF > /dev/null
cmake --build build-nosimd
ctest --test-dir build-nosimd 2>&1 | tee -a test_output.txt
build-nosimd/src/fuzz/fjs_fuzz --smoke 2>&1 | tee -a test_output.txt
build-nosimd/src/experiments/fjs_experiments --only e9 --smoke \
  --out results --run-id e9-nosimd --force --quiet
scripts/bench_compare.py --json results/e9-nosimd-compare.json \
  BENCH_e9_scalar.json results/e9-nosimd/e9/benchmarks.json \
  || echo "WARNING: FJS_SIMD=OFF bench smoke regressed vs BENCH_e9_scalar.json (noisy single run)"
build/src/experiments/fjs_experiments --smoke --skip e9 \
  --out results --run-id smoke-dispatch --force --quiet
FJS_FORCE_SCALAR=1 build/src/experiments/fjs_experiments --smoke --skip e9 \
  --out results --run-id smoke-forced-scalar --force --quiet
if cmp results/smoke-dispatch/verdicts.json \
       results/smoke-forced-scalar/verdicts.json; then
  echo "force-scalar differential OK: verdicts byte-identical" \
    | tee -a test_output.txt
else
  echo "ERROR: FJS_FORCE_SCALAR=1 changed experiment verdicts" \
    | tee -a test_output.txt
  exit 1
fi

# Planted-bug drill: a build with -DFJS_PLANTED_TIEBREAK_BUG=ON swaps the
# engine's same-tick completion/arrival priority. The fuzzer MUST catch it
# (via the independent trace validator) and shrink it to a tiny repro —
# this proves the harness detects the class of bug it exists for.
cmake -B build-planted -G Ninja -DFJS_PLANTED_TIEBREAK_BUG=ON > /dev/null
cmake --build build-planted --target fjs_fuzz
if build-planted/src/fuzz/fjs_fuzz --smoke > planted_output.txt 2>&1; then
  echo "ERROR: planted tie-break bug was NOT caught by the fuzzer" \
    | tee -a test_output.txt
  exit 1
fi
echo "planted tie-break bug caught and shrunk, as expected:" \
  | tee -a test_output.txt
head -8 planted_output.txt | tee -a test_output.txt

# Planted-checkpoint-bug drill: -DFJS_PLANTED_CHECKPOINT_BUG=ON drops one
# word from the batch+ scheduler snapshot, so a resumed run silently
# diverges from the uninterrupted one. The checkpoint-replay differential
# oracle (ckpt:*) MUST catch the divergence — in the plain build and under
# both sanitizer configs, so the drill does not hinge on one codegen.
for planted in \
    "build-planted-ckpt:" \
    "build-planted-ckpt-asan:-DFJS_SANITIZE=address,undefined" \
    "build-planted-ckpt-tsan:-DFJS_SANITIZE=thread"; do
  dir="${planted%%:*}"
  extra="${planted#*:}"
  cmake -B "$dir" -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFJS_PLANTED_CHECKPOINT_BUG=ON ${extra} > /dev/null
  cmake --build "$dir" --target fjs_fuzz
  if "$dir"/src/fuzz/fjs_fuzz --smoke > planted_ckpt_output.txt 2>&1; then
    echo "ERROR: planted checkpoint bug was NOT caught by the fuzzer ($dir)" \
      | tee -a test_output.txt
    exit 1
  fi
  echo "planted checkpoint bug caught ($dir), as expected:" \
    | tee -a test_output.txt
  head -4 planted_ckpt_output.txt | tee -a test_output.txt
done

# Trace-export smoke: one experiment with --trace, then validate the
# Chrome-tracing JSON (chrome://tracing / ui.perfetto.dev format) and the
# manifest's telemetry block. --force exercises the overwrite path the
# runner otherwise refuses (see docs/OBSERVABILITY.md).
build/src/experiments/fjs_experiments --only e2 --smoke \
  --out results --run-id trace-smoke --force \
  --trace results/trace-smoke/trace.json --quiet
python3 - <<'EOF' 2>&1 | tee -a test_output.txt
import json
with open("results/trace-smoke/trace.json", encoding="utf-8") as fh:
    doc = json.load(fh)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
for event in events:
    assert event["ph"] in ("X", "i"), event
    assert {"name", "cat", "ts", "pid", "tid"} <= set(event), event
assert any(e["name"] == "e2" for e in events), "no e2 span recorded"
with open("results/trace-smoke/manifest.json", encoding="utf-8") as fh:
    manifest = json.load(fh)
telemetry = manifest["telemetry"]
assert telemetry["enabled"] and telemetry["counters"], telemetry
print("trace smoke OK: %d events, %d deterministic counters"
      % (len(events), len(telemetry["counters"])))
EOF

# Telemetry-overhead gate: the engine benchmarks must not pay more than
# ~1% for the compiled-in (but quiescent-trace) telemetry layer. Compare
# the -DFJS_TELEMETRY=OFF build (baseline) against the default build on
# the same machine back-to-back; noisy single runs make this a warning,
# never a failure.
cmake -B build-notelemetry -G Ninja -DFJS_TELEMETRY=OFF > /dev/null
cmake --build build-notelemetry --target fjs_experiments
FJS_BENCH_FILTER='BM_EngineThroughput' \
  build-notelemetry/src/experiments/fjs_experiments --only e9 --smoke \
  --out results --run-id e9-notelemetry --force --quiet
FJS_BENCH_FILTER='BM_EngineThroughput' \
  build/src/experiments/fjs_experiments --only e9 --smoke \
  --out results --run-id e9-telemetry-on --force --quiet
scripts/bench_compare.py --threshold 0.01 \
  results/e9-notelemetry/e9/benchmarks.json \
  results/e9-telemetry-on/e9/benchmarks.json \
  2>&1 | tee -a test_output.txt \
  || echo "WARNING: telemetry overhead above the 1% budget on this run" \
       "(noisy single run; rerun back-to-back on an idle machine)" \
    | tee -a test_output.txt

# Fast perf smoke: E9's smoke profile, emitted as JSON and diffed
# against the committed baseline. A >15% drop on this machine is only a
# warning here (single runs are noisy); rerun the full profile
# back-to-back against the baseline before trusting it.
build/src/experiments/fjs_experiments --only e9 --smoke \
  --out results --run-id e9-smoke --force --quiet
scripts/bench_compare.py BENCH_e9.json results/e9-smoke/e9/benchmarks.json \
  || echo "WARNING: bench smoke regressed vs BENCH_e9.json (noisy single run)"

# All sixteen experiments, smoke profile: tables, verdicts, manifest.
# Nonzero exit = a machine-checked paper claim failed. Wall-time trends
# vs the previous smoke run are informational only.
rm -rf results/smoke
build/src/experiments/fjs_experiments --smoke --out results --run-id smoke \
  2>&1 | tee bench_output.txt
if [ -f results/last-smoke-manifest.json ]; then
  scripts/bench_compare.py --manifests \
    results/last-smoke-manifest.json results/smoke/manifest.json \
    | tee -a bench_output.txt
fi
cp results/smoke/manifest.json results/last-smoke-manifest.json

echo "Done. See test_output.txt, bench_output.txt, results/smoke/ and EXPERIMENTS.md."
