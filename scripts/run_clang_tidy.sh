#!/usr/bin/env bash
# Static-analysis gate: clang-tidy (bugprone-*, performance-*,
# modernize-use-std-span — see .clang-tidy) over every translation unit
# in src/, diffed against the checked-in suppression baseline
# scripts/clang_tidy_baseline.txt. Findings already in the baseline are
# tolerated; anything new fails. After reviewing a deliberate change:
#   scripts/run_clang_tidy.sh --update   # rewrite the baseline, commit it
# Environments without clang-tidy (the pinned toolchain image does not
# ship it) warn and exit 0: the gate runs wherever the tool exists.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "WARNING: clang-tidy not found on PATH; skipping the static-analysis gate"
  exit 0
fi

update=0
if [ "${1:-}" = "--update" ]; then
  update=1
fi

# The tidy preset only exports compile_commands.json (no build needed).
cmake --preset tidy > /dev/null

baseline=scripts/clang_tidy_baseline.txt
current=$(mktemp)
trap 'rm -f "$current"' EXIT

# Normalize to one line per finding — "src/...path [check] message" —
# with line/column stripped, so edits above a tolerated finding do not
# churn the baseline. Duplicate findings (headers seen from many TUs)
# collapse via sort -u.
find src -name '*.cpp' -print0 | sort -z |
  xargs -0 clang-tidy -p build-tidy --quiet 2> /dev/null |
  sed -nE 's|^.*/(src/[^:]+):[0-9]+:[0-9]+: warning: (.*) \[([A-Za-z0-9.,-]+)\]$|\1 [\3] \2|p' |
  sort -u > "$current"

if [ "$update" = 1 ]; then
  {
    sed -n '/^#/p' "$baseline"
    cat "$current"
  } > "$baseline.tmp"
  mv "$baseline.tmp" "$baseline"
  echo "baseline refreshed: $(grep -cv '^#' "$baseline" || true) tolerated finding(s)"
  exit 0
fi

new=$(grep -vxF -f <(grep -v '^#' "$baseline") "$current" || true)
if [ -n "$new" ]; then
  echo "clang-tidy: findings not in the suppression baseline:"
  echo "$new"
  echo "(review; if tolerated, refresh with scripts/run_clang_tidy.sh --update)"
  exit 1
fi
echo "clang-tidy: clean against the suppression baseline" \
  "($(wc -l < "$current") finding(s) tolerated)"
