// Adversary explorer: watch the paper's lower-bound constructions defeat a
// scheduler of your choice, iteration by iteration.
//
//   $ ./adversary_explorer [scheduler]    (default: batch+)
//
// Runs the §3.1 non-clairvoyant adversary (Theorem 3.3) and the §4.1
// clairvoyant golden-ratio adversary (Theorem 4.1) and narrates outcomes.
#include <iostream>
#include <string>

#include "adversary/clairvoyant_lb.h"
#include "adversary/nonclairvoyant_lb.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"

namespace {

void explore_nonclairvoyant(const std::string& key) {
  using namespace fjs;
  std::cout << "=== §3.1 non-clairvoyant adversary vs " << key << " ===\n";
  NonClairvoyantLbParams params;
  params.mu = 4.0;
  params.iterations = 3;
  params.counts = {1024, 32, 8};
  std::cout << "mu=" << params.mu << ", iterations=" << params.iterations
            << ", counts={1024,32,8} (scaled-down from the paper's"
               " double-exponential sizes)\n";

  NonClairvoyantAdversary adversary(params);
  const auto scheduler = make_scheduler(key);
  if (scheduler->requires_clairvoyance()) {
    std::cout << "(" << key << " needs clairvoyance; the non-clairvoyant"
              << " game does not apply — skipping)\n\n";
    return;
  }
  Engine engine(adversary, adversary, *scheduler, {});
  const SimulationResult result = engine.run();

  std::cout << "iterations released: " << adversary.iterations_released()
            << (adversary.reached_final_wave() ? " (incl. final wave)" : "")
            << '\n';
  const auto& earmarks = adversary.earmarks();
  const auto& releases = adversary.release_times();
  for (std::size_t i = 0; i < releases.size(); ++i) {
    std::cout << "  iteration " << (i + 1) << " released at t="
              << releases[i].to_string();
    if (i < earmarks.size()) {
      const JobId e = earmarks[i];
      std::cout << "; earmarked J" << e << " (length set to mu, completed t="
                << (result.schedule.start(e) + result.instance.job(e).length)
                       .to_string()
                << ')';
    }
    std::cout << '\n';
  }
  const Schedule reference = adversary.reference_schedule(result.instance);
  const Time ref_span = reference.span(result.instance);
  std::cout << "online span     = " << result.span().to_string() << '\n'
            << "reference span  = " << ref_span.to_string()
            << "  (constructed near-optimal schedule)\n"
            << "measured ratio  = "
            << format_double(time_ratio(result.span(), ref_span), 4) << '\n'
            << "theoretical floor for this outcome = "
            << format_double(adversary.theoretical_ratio_floor(), 4)
            << "  (-> mu as k grows)\n\n";
}

void explore_clairvoyant(const std::string& key) {
  using namespace fjs;
  std::cout << "=== §4.1 clairvoyant golden-ratio adversary vs " << key
            << " ===\n";
  ClairvoyantAdversary adversary(ClairvoyantLbParams{.max_iterations = 24});
  const auto scheduler = make_scheduler(key);
  NoDeferralOracle oracle;
  Engine engine(adversary, oracle, *scheduler,
                EngineOptions{.clairvoyant = true});
  const SimulationResult result = engine.run();

  if (adversary.stopped_early()) {
    std::cout << "scheduler did NOT start the long job inside the short"
                 " job's window -> adversary stopped after iteration "
              << adversary.iterations_released() << '\n';
  } else {
    std::cout << "scheduler started every long job inside the window ->"
                 " adversary ran all "
              << adversary.iterations_released() << " iterations\n";
  }
  const Schedule reference = adversary.reference_schedule(result.instance);
  const Time ref_span = reference.span(result.instance);
  std::cout << "online span     = " << result.span().to_string() << '\n'
            << "reference span  = " << ref_span.to_string() << '\n'
            << "measured ratio  = "
            << format_double(time_ratio(result.span(), ref_span), 4) << '\n'
            << "paper's ratio for this outcome = "
            << format_double(adversary.theoretical_ratio(), 4)
            << "  (phi = " << format_double(ClairvoyantAdversary::phi(), 4)
            << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string key = argc > 1 ? argv[1] : "batch+";
  explore_nonclairvoyant(key);
  explore_clairvoyant(key);
  return 0;
}
