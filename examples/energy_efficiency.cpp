// Energy-efficiency scenario from the paper's introduction: a server's
// energy = idle power × time-on + energy per unit of work. The work term
// is fixed by the job set, so minimizing the span minimizes energy on one
// big server. With several capacity-limited servers, the §5 DBP extension
// applies: total energy tracks total server usage time.
//
//   $ ./energy_efficiency [jobs] [seed]
#include <cstdlib>
#include <iostream>

#include "dbp/pipeline.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"
#include "support/table.h"
#include "workload/cloud_trace.h"

int main(int argc, char** argv) {
  using namespace fjs;

  CloudTraceConfig config;
  config.job_count = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1]))
                              : 300;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;
  const CloudTrace trace = generate_cloud_trace(config, seed);

  // Energy model (per server): P_idle while on, plus E_work per unit of
  // size×time actually processed (the latter is scheduler-independent).
  constexpr double kIdleWatts = 180.0;
  constexpr double kActiveExtraWatts = 120.0;  // per unit of utilization
  double work_volume = 0.0;                    // Σ size × length (hours)
  for (JobId id = 0; id < trace.instance.size(); ++id) {
    work_volume +=
        trace.sizes[id] * trace.instance.job(id).length.to_units();
  }
  const double fixed_kwh = kActiveExtraWatts * work_volume / 1000.0;

  std::cout << "Energy scenario: " << trace.instance.size()
            << " jobs, fixed work term " << format_double(fixed_kwh, 1)
            << " kWh (scheduler-independent)\n\n";

  std::cout << "--- One large server: energy tracks the span ---\n";
  Table single({"scheduler", "span (h)", "idle-power energy (kWh)",
                "total (kWh)"});
  for (const auto& spec : schedulers_for_model(true)) {
    const auto scheduler = spec.make();
    const Time span = simulate_span(trace.instance, *scheduler, true);
    const double idle_kwh = kIdleWatts * span.to_units() / 1000.0;
    single.add_row({scheduler->name(), format_double(span.to_units(), 2),
                    format_double(idle_kwh, 2),
                    format_double(idle_kwh + fixed_kwh, 2)});
  }
  std::cout << single.render() << '\n';

  std::cout << "--- Capacity-1 servers (MinUsageTime DBP, §5) ---\n";
  Table multi({"pipeline", "usage (server-h)", "servers", "energy (kWh)",
               "vs LB"});
  for (const char* sched_key : {"eager", "lazy", "batch+", "profit"}) {
    for (const auto& packer : make_standard_packers()) {
      if (packer->name() != "first-fit" &&
          packer->name().find("cd-first-fit") == std::string::npos) {
        continue;  // the §5 discussion pairs schedulers with (CD-)FF
      }
      const PipelineResult result =
          run_pipeline(trace.instance, trace.sizes, sched_key, *packer);
      const double kwh =
          kIdleWatts * result.packing.total_usage.to_units() / 1000.0 +
          fixed_kwh;
      multi.add_row(
          {result.scheduler + " + " + result.packer,
           format_double(result.packing.total_usage.to_units(), 2),
           std::to_string(result.packing.bins_opened),
           format_double(kwh, 2),
           format_double(result.usage_ratio_upper, 3) + "x"});
    }
  }
  std::cout << multi.render();
  return 0;
}
