// Cloud-billing scenario from the paper's introduction: under
// pay-as-you-go pricing, a single large server's bill is proportional to
// the time at least one job is running — exactly the span. This example
// synthesizes a two-day cloud trace and compares every scheduler's
// server-hours and dollar cost.
//
//   $ ./cloud_cost [jobs] [seed]
#include <cstdlib>
#include <iostream>

#include "analysis/report.h"
#include "offline/heuristic.h"
#include "offline/lower_bound.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"
#include "support/table.h"
#include "workload/cloud_trace.h"

int main(int argc, char** argv) {
  using namespace fjs;

  CloudTraceConfig config;
  config.job_count = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1]))
                              : 400;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 2024;
  const CloudTrace trace = generate_cloud_trace(config, seed);

  constexpr double kDollarsPerHour = 3.06;  // on-demand large instance

  std::cout << "Synthetic cloud trace: " << trace.instance.size()
            << " jobs over ~" << config.hours << "h (seed " << seed << ")\n"
            << "Billing model: $" << kDollarsPerHour
            << "/server-hour; one server bills whenever any job runs.\n\n";

  const Time opt_upper = heuristic_span(trace.instance);
  const Time opt_lower = best_lower_bound(trace.instance);

  Table table({"scheduler", "server-hours", "cost ($)", "vs offline",
               "avg start delay (h)"});
  for (const auto& spec : schedulers_for_model(true)) {
    const auto scheduler = spec.make();
    const SimulationResult result =
        simulate(trace.instance, *scheduler, /*clairvoyant=*/true);
    const double hours = result.span().to_units();
    const double delay =
        result.schedule.total_delay(result.instance).to_units() /
        static_cast<double>(result.instance.size());
    table.add_row({scheduler->name(), format_double(hours, 2),
                   format_double(hours * kDollarsPerHour, 2),
                   format_double(time_ratio(result.span(), opt_upper), 3) +
                       "x",
                   format_double(delay, 2)});
  }
  table.add_row({"offline heuristic", format_double(opt_upper.to_units(), 2),
                 format_double(opt_upper.to_units() * kDollarsPerHour, 2),
                 "1x", "-"});
  std::cout << table.render() << '\n';
  std::cout << "certified OPT lower bound: "
            << format_double(opt_lower.to_units(), 2) << " server-hours\n\n";

  // Timeline detail for the best guaranteed scheduler (Batch+).
  const auto batch_plus = make_scheduler("batch+");
  const SimulationResult bp_run =
      simulate(trace.instance, *batch_plus, true);
  std::cout << "Batch+ timeline:\n"
            << analyze_timeline(bp_run.instance, bp_run.schedule).to_string();
  return 0;
}
