// Quickstart: build a small instance, run the Batch+ scheduler online,
// and compare its span against the exact offline optimum.
//
//   $ ./quickstart
#include <iostream>

#include "analysis/gantt.h"
#include "core/instance.h"
#include "offline/exact.h"
#include "schedulers/batch_plus.h"
#include "sim/engine.h"

int main() {
  using namespace fjs;

  // Jobs are (arrival, starting deadline, processing length) in abstract
  // time units. A job may start anywhere in [arrival, deadline]; once
  // started it runs for its length without interruption.
  Instance instance = InstanceBuilder()
                          .add(/*arrival=*/0.0, /*deadline=*/0.0, /*len=*/1.0)
                          .add(0.0, 4.0, 2.0)
                          .add(0.5, 6.0, 1.5)
                          .add(3.0, 3.0, 1.0)
                          .add(3.5, 9.0, 2.0)
                          .build();

  std::cout << "Instance (" << instance.size() << " jobs, mu="
            << instance.mu() << "):\n"
            << instance.to_string() << '\n';

  // Run Batch+ online (non-clairvoyant: lengths are hidden until jobs
  // complete; Batch+ never needs them).
  BatchPlusScheduler scheduler;
  const SimulationResult result =
      simulate(instance, scheduler, /*clairvoyant=*/false);

  std::cout << "Batch+ schedule:\n"
            << result.schedule.to_string(result.instance) << '\n'
            << render_gantt(result.instance, result.schedule) << '\n';

  const ScheduleMetrics metrics =
      compute_metrics(result.instance, result.schedule);
  std::cout << "span            = " << metrics.span.to_string() << '\n'
            << "makespan end    = " << metrics.makespan_end.to_string() << '\n'
            << "max concurrency = " << metrics.max_concurrency << '\n'
            << "total work      = " << metrics.total_work.to_string() << '\n';

  // The exact offline optimum (this instance is small and on the unit
  // grid after halving the quantum).
  ExactOptions options;
  options.quantum = Time(Time::kTicksPerUnit / 2);
  const Time opt = exact_optimal_span(result.instance, options);
  std::cout << "offline optimum = " << opt.to_string() << '\n'
            << "ratio           = " << time_ratio(metrics.span, opt) << '\n'
            << "Theorem 3.5 cap = mu + 1 = " << result.instance.mu() + 1.0
            << '\n';
  return 0;
}
