// fjs_cli — run any registered scheduler on a workload or an instance file
// and inspect the result (metrics, ratio bracket, ASCII Gantt chart).
//
//   fjs_cli --scheduler batch+ --workload bimodal --jobs 40 --seed 7 --gantt
//   fjs_cli --scheduler profit:k=2 --file my_instance.txt --stats
//   fjs_cli --scheduler cdb --workload heavy-tail --svg timeline.svg
//   fjs_cli --list
//
// Instance file format (units): first line N, then N lines "a d p".
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/gantt.h"
#include "analysis/instance_stats.h"
#include "analysis/ratio.h"
#include "analysis/report.h"
#include "analysis/svg.h"
#include "schedulers/registry.h"
#include "sim/engine.h"
#include "support/string_util.h"
#include "workload/suite.h"

namespace {

using namespace fjs;

int usage() {
  std::cerr
      << "usage: fjs_cli [--scheduler KEY] [--workload NAME | --file PATH]\n"
         "               [--jobs N] [--seed S] [--gantt] [--stats]\n"
         "               [--timeline] [--svg PATH] [--save-schedule PATH]\n"
         "               [--list]\n";
  return 2;
}

std::optional<WorkloadConfig> find_workload(const std::string& name) {
  for (const auto& named : standard_suite()) {
    if (named.name == name) {
      return named.config;
    }
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scheduler_key = "batch+";
  std::string workload = "uniform-hi-lax";
  std::string file;
  std::size_t jobs = 30;
  std::uint64_t seed = 1;
  bool gantt = false;
  bool stats = false;
  bool timeline = false;
  std::string svg_path;
  std::string save_schedule_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--scheduler") {
      scheduler_key = next();
    } else if (arg == "--workload") {
      workload = next();
    } else if (arg == "--file") {
      file = next();
    } else if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--gantt") {
      gantt = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--timeline") {
      timeline = true;
    } else if (arg == "--svg") {
      svg_path = next();
    } else if (arg == "--save-schedule") {
      save_schedule_path = next();
    } else if (arg == "--list") {
      std::cout << "schedulers:";
      for (const auto& key : known_scheduler_keys()) {
        std::cout << ' ' << key;
      }
      std::cout << "\nworkloads:";
      for (const auto& named : standard_suite()) {
        std::cout << ' ' << named.name;
      }
      std::cout << '\n';
      return 0;
    } else {
      return usage();
    }
  }

  Instance instance;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot open " << file << '\n';
      return 1;
    }
    instance = Instance::parse(in);
  } else {
    const auto config = find_workload(workload);
    if (!config.has_value()) {
      std::cerr << "unknown workload '" << workload << "' (see --list)\n";
      return 1;
    }
    WorkloadConfig cfg = *config;
    cfg.job_count = jobs;
    instance = generate_workload(cfg, seed);
  }

  const auto scheduler = make_scheduler(scheduler_key);
  const SimulationResult result =
      simulate(instance, *scheduler, scheduler->requires_clairvoyance());
  const ScheduleMetrics metrics =
      compute_metrics(result.instance, result.schedule);

  std::cout << scheduler->name() << " on " << result.instance.size()
            << " jobs (mu=" << format_double(result.instance.mu(), 3)
            << ")\n"
            << "  span             " << metrics.span.to_string() << '\n'
            << "  makespan end     " << metrics.makespan_end.to_string()
            << '\n'
            << "  max concurrency  " << metrics.max_concurrency << '\n'
            << "  total delay      " << metrics.total_delay.to_string()
            << '\n'
            << "  span / work      "
            << format_double(metrics.span_over_work, 3) << '\n';

  const RatioBracket bracket =
      measure_ratio(instance, scheduler_key, OptMethod::kBracket);
  std::cout << "  ratio bracket    ["
            << format_double(bracket.ratio_lower(), 3) << ", "
            << format_double(bracket.ratio_upper(), 3) << "]  (vs heuristic"
            << " OPT " << bracket.opt_upper.to_string() << ", certified LB "
            << bracket.opt_lower.to_string() << ")\n";

  if (stats) {
    std::cout << '\n'
              << compute_instance_stats(result.instance).to_string() << '\n'
              << guarantee_table(result.instance);
  }
  if (timeline) {
    std::cout << '\n'
              << analyze_timeline(result.instance, result.schedule)
                     .to_string();
  }
  if (gantt) {
    std::cout << '\n'
              << render_gantt(result.instance, result.schedule);
  }
  if (!svg_path.empty()) {
    if (write_svg_timeline(result.instance, result.schedule, svg_path)) {
      std::cout << "wrote " << svg_path << '\n';
    } else {
      std::cerr << "failed to write " << svg_path << '\n';
      return 1;
    }
  }
  if (!save_schedule_path.empty()) {
    std::ofstream out(save_schedule_path);
    if (!out) {
      std::cerr << "failed to write " << save_schedule_path << '\n';
      return 1;
    }
    result.schedule.write(out);
    std::cout << "wrote " << save_schedule_path << '\n';
  }
  return 0;
}
