// Paper walkthrough: renders the paper's own worked examples as Gantt
// charts at small scale, so you can SEE each theorem's mechanism:
//
//   1. Figure 2 — Batch paying ~2μ on the tightness family;
//   2. Figure 3 — Batch+ paying ~μ+1 (tight);
//   3. Theorem 4.1 — the golden-ratio dilemma posed to a clairvoyant
//      scheduler, and both possible outcomes.
#include <iostream>

#include "adversary/clairvoyant_lb.h"
#include "adversary/tightness.h"
#include "analysis/flag_forest.h"
#include "analysis/gantt.h"
#include "schedulers/batch.h"
#include "schedulers/batch_plus.h"
#include "schedulers/lazy.h"
#include "schedulers/profit.h"
#include "sim/engine.h"
#include "support/string_util.h"

namespace {

using namespace fjs;

void walkthrough_figure2() {
  std::cout << "================ Figure 2: Batch vs the tightness family"
               " (m=3, mu=2) ================\n"
               "Groups: zero-laxity unit jobs; unit jobs with laxity"
               " mu-eps; 2m length-mu jobs\nwith a common starting"
               " deadline. Batch keeps firing iterations that pair one\n"
               "short with one long job, stretching the span to 2m*mu.\n\n";
  const TightnessInstance tight = make_batch_tightness(3, 2.0, 0.05);
  BatchScheduler batch;
  const SimulationResult run = simulate(tight.instance, batch, false);
  std::cout << "--- Batch (span " << run.span().to_string() << ") ---\n"
            << render_gantt(run.instance, run.schedule) << '\n';
  std::cout << "--- Paper's near-optimal schedule (span "
            << tight.reference.span(tight.instance).to_string() << ") ---\n"
            << render_gantt(tight.instance, tight.reference) << '\n'
            << "ratio " << format_double(
                   time_ratio(run.span(), tight.reference.span(tight.instance)),
                   3)
            << "  ->  2*mu = 4 as m grows (Theorem 3.4)\n\n";
}

void walkthrough_figure3() {
  std::cout << "================ Figure 3: Batch+ tight family (m=3,"
               " mu=2) ================\n"
               "Each long job arrives just before the current flag"
               " completes, so Batch+ starts\nit eagerly — stringing"
               " nearly-disjoint (mu+1)-length blocks.\n\n";
  const TightnessInstance tight = make_batch_plus_tightness(3, 2.0, 0.05);
  BatchPlusScheduler bp;
  const SimulationResult run = simulate(tight.instance, bp, false);
  std::cout << "--- Batch+ (span " << run.span().to_string() << ") ---\n"
            << render_gantt(run.instance, run.schedule) << '\n';
  std::cout << "--- Paper's near-optimal schedule (span "
            << tight.reference.span(tight.instance).to_string() << ") ---\n"
            << render_gantt(tight.instance, tight.reference) << '\n'
            << "ratio " << format_double(
                   time_ratio(run.span(), tight.reference.span(tight.instance)),
                   3)
            << "  ->  mu+1 = 3 as m grows (Theorem 3.5, tight)\n\n";
}

void walkthrough_theorem41(OnlineScheduler& scheduler,
                           const std::string& label) {
  ClairvoyantAdversary adversary(ClairvoyantLbParams{.max_iterations = 4});
  NoDeferralOracle oracle;
  Engine engine(adversary, oracle, scheduler,
                EngineOptions{.clairvoyant = true});
  const SimulationResult run = engine.run();
  const Schedule reference = adversary.reference_schedule(run.instance);
  std::cout << "--- " << label << ": "
            << (adversary.stopped_early()
                    ? "refused the long job -> adversary stops"
                    : "kept starting long jobs -> adversary runs on")
            << " (measured ratio "
            << format_double(time_ratio(run.span(),
                                        reference.span(run.instance)),
                             3)
            << ", paper "
            << format_double(adversary.theoretical_ratio(), 3) << ") ---\n"
            << render_gantt(run.instance, run.schedule) << '\n';
}

}  // namespace

int main() {
  walkthrough_figure2();
  walkthrough_figure3();

  std::cout << "================ Theorem 4.1: the golden-ratio dilemma"
               " (n=4) ================\n"
               "Each iteration: a zero-laxity unit job plus a length-phi"
               " job with generous\nlaxity. Start the long job inside the"
               " unit window and the adversary repeats;\nrefuse and it"
               " stops. Either way the ratio tends to phi = 1.618.\n\n";
  LazyScheduler lazy;
  walkthrough_theorem41(lazy, "lazy (refuses immediately)");
  ProfitScheduler profit;
  walkthrough_theorem41(profit, "profit (rides through)");

  // Bonus: the §4.3 proof object — Profit's flag forest on a workload
  // with overlapping iterations.
  std::cout << "================ §4.3: Profit's flag forest"
               " ================\n"
               "Each tree is charged to a disjoint chunk of OPT in the"
               " proof of Theorem 4.11.\n\n";
  const Instance inst = InstanceBuilder()
                            .add(0.0, 1.0, 4.0)
                            .add(0.0, 3.0, 9.0)
                            .add(0.0, 9.0, 25.0)
                            .add(14.0, 40.0, 2.0)
                            .add(41.0, 44.0, 1.0)
                            .build();
  ProfitScheduler profit2(1.2);
  const SimulationResult run = simulate(inst, profit2, true);
  const FlagForest forest =
      build_flag_forest(run.instance, profit2.flag_history());
  std::cout << forest.to_string(run.instance) << '\n'
            << forest.tree_count() << " tree(s), height "
            << forest.height() << '\n';
  return 0;
}
